#include "lattice/lattice.hpp"

#include <cassert>

namespace svlc {

LevelId Lattice::add_level(std::string name) {
    if (auto existing = find(name))
        return *existing;
    names_.push_back(std::move(name));
    finalized_ = false;
    return static_cast<LevelId>(names_.size() - 1);
}

void Lattice::add_flow(LevelId lo, LevelId hi) {
    assert(lo < names_.size() && hi < names_.size());
    edges_.emplace_back(lo, hi);
    finalized_ = false;
}

std::optional<LevelId> Lattice::find(std::string_view name) const {
    for (size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<LevelId>(i);
    return std::nullopt;
}

bool Lattice::finalize(std::string* error) {
    const size_t n = names_.size();
    if (n == 0) {
        if (error)
            *error = "lattice has no levels";
        return false;
    }
    leq_.assign(n, std::vector<uint8_t>(n, 0));
    for (size_t i = 0; i < n; ++i)
        leq_[i][i] = 1;
    for (auto [lo, hi] : edges_)
        leq_[lo][hi] = 1;
    // Floyd–Warshall transitive closure.
    for (size_t k = 0; k < n; ++k)
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                if (leq_[i][k] && leq_[k][j])
                    leq_[i][j] = 1;
    // Antisymmetry: distinct mutually-ordered levels mean a cycle.
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            if (leq_[i][j] && leq_[j][i]) {
                if (error)
                    *error = "flow cycle between levels '" + names_[i] +
                             "' and '" + names_[j] + "'";
                return false;
            }
    // Join/meet tables via unique minimal upper / maximal lower bounds.
    join_.assign(n, std::vector<LevelId>(n, kInvalidLevel));
    meet_.assign(n, std::vector<LevelId>(n, kInvalidLevel));
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = 0; b < n; ++b) {
            // Join: least upper bound.
            LevelId lub = kInvalidLevel;
            for (size_t c = 0; c < n; ++c) {
                if (!leq_[a][c] || !leq_[b][c])
                    continue;
                if (lub == kInvalidLevel || leq_[c][lub])
                    lub = static_cast<LevelId>(c);
            }
            if (lub == kInvalidLevel) {
                if (error)
                    *error = "levels '" + names_[a] + "' and '" + names_[b] +
                             "' have no upper bound";
                return false;
            }
            // Verify LUB is below every upper bound (uniqueness).
            for (size_t c = 0; c < n; ++c)
                if (leq_[a][c] && leq_[b][c] && !leq_[lub][c]) {
                    if (error)
                        *error = "levels '" + names_[a] + "' and '" +
                                 names_[b] + "' lack a unique join";
                    return false;
                }
            join_[a][b] = lub;
            // Meet: greatest lower bound.
            LevelId glb = kInvalidLevel;
            for (size_t c = 0; c < n; ++c) {
                if (!leq_[c][a] || !leq_[c][b])
                    continue;
                if (glb == kInvalidLevel || leq_[glb][c])
                    glb = static_cast<LevelId>(c);
            }
            if (glb == kInvalidLevel) {
                if (error)
                    *error = "levels '" + names_[a] + "' and '" + names_[b] +
                             "' have no lower bound";
                return false;
            }
            for (size_t c = 0; c < n; ++c)
                if (leq_[c][a] && leq_[c][b] && !leq_[c][glb]) {
                    if (error)
                        *error = "levels '" + names_[a] + "' and '" +
                                 names_[b] + "' lack a unique meet";
                    return false;
                }
            meet_[a][b] = glb;
        }
    }
    // Bottom/top: fold joins/meets.
    bottom_ = 0;
    top_ = 0;
    for (size_t i = 1; i < n; ++i) {
        bottom_ = meet_[bottom_][i];
        top_ = join_[top_][i];
    }
    finalized_ = true;
    return true;
}

bool Lattice::flows(LevelId lo, LevelId hi) const {
    assert(finalized_);
    return leq_[lo][hi] != 0;
}

LevelId Lattice::join(LevelId a, LevelId b) const {
    assert(finalized_);
    return join_[a][b];
}

LevelId Lattice::meet(LevelId a, LevelId b) const {
    assert(finalized_);
    return meet_[a][b];
}

Lattice Lattice::two_point_integrity() {
    Lattice l;
    LevelId t = l.add_level("T");
    LevelId u = l.add_level("U");
    l.add_flow(t, u);
    [[maybe_unused]] bool ok = l.finalize();
    assert(ok);
    return l;
}

Lattice Lattice::two_point_confidentiality() {
    Lattice l;
    LevelId p = l.add_level("P");
    LevelId s = l.add_level("S");
    l.add_flow(p, s);
    [[maybe_unused]] bool ok = l.finalize();
    assert(ok);
    return l;
}

Lattice Lattice::diamond() {
    Lattice l;
    LevelId lo = l.add_level("LOW");
    LevelId m1 = l.add_level("M1");
    LevelId m2 = l.add_level("M2");
    LevelId hi = l.add_level("HIGH");
    l.add_flow(lo, m1);
    l.add_flow(lo, m2);
    l.add_flow(m1, hi);
    l.add_flow(m2, hi);
    [[maybe_unused]] bool ok = l.finalize();
    assert(ok);
    return l;
}

} // namespace svlc
