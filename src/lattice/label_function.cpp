#include "lattice/label_function.hpp"

#include <cassert>

namespace svlc {

LevelId LabelFunction::evaluate(const std::vector<uint64_t>& args) const {
    assert(args.size() == arg_widths_.size());
    std::vector<uint64_t> masked(args.size());
    for (size_t i = 0; i < args.size(); ++i)
        masked[i] = args[i] & BitVec::mask(arg_widths_[i]);
    for (const Entry& e : entries_)
        if (e.args == masked)
            return e.level;
    return default_;
}

bool LabelFunction::is_constant(const Lattice& lat, LevelId* level) const {
    (void)lat;
    LevelId first = entries_.empty() ? default_ : entries_.front().level;
    for (const Entry& e : entries_)
        if (e.level != first)
            return false;
    // Entries may not cover the whole domain, so the default also counts
    // unless the entries provably cover everything; be conservative and
    // require the default to match too.
    if (default_ != first) {
        // Check whether entries cover the full (small) domain.
        uint64_t domain = 1;
        for (uint32_t w : arg_widths_) {
            if (w > 16)
                return false; // too large to prove coverage
            domain *= (uint64_t{1} << w);
            if (domain > 65536)
                return false;
        }
        if (entries_.size() < domain)
            return false;
    }
    if (level)
        *level = first;
    return true;
}

FuncId SecurityPolicy::add_function(LabelFunction fn) {
    functions_.push_back(std::move(fn));
    return static_cast<FuncId>(functions_.size() - 1);
}

std::optional<FuncId> SecurityPolicy::find_function(std::string_view name) const {
    for (size_t i = 0; i < functions_.size(); ++i)
        if (functions_[i].name() == name)
            return static_cast<FuncId>(i);
    return std::nullopt;
}

} // namespace svlc
