// Dependent-label functions: pure, total maps from bit-vector argument
// tuples to lattice levels, declared in the policy section of a
// SecVerilogLC source file, e.g.
//   function mode_to_lb(x:1) { 0 -> T; default -> U; }
#pragma once

#include "lattice/lattice.hpp"
#include "support/bitvec.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace svlc {

using FuncId = uint32_t;
constexpr FuncId kInvalidFunc = ~FuncId{0};

/// A total function from argument values to levels: explicit entries plus
/// a mandatory default. Totality makes label evaluation defined for every
/// run-time state, which the soundness argument relies on.
class LabelFunction {
public:
    LabelFunction(std::string name, std::vector<uint32_t> arg_widths,
                  LevelId default_level)
        : name_(std::move(name)), arg_widths_(std::move(arg_widths)),
          default_(default_level) {}

    void add_entry(std::vector<uint64_t> args, LevelId level) {
        entries_.push_back({std::move(args), level});
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] size_t arity() const { return arg_widths_.size(); }
    [[nodiscard]] const std::vector<uint32_t>& arg_widths() const {
        return arg_widths_;
    }
    [[nodiscard]] LevelId default_level() const { return default_; }

    /// Evaluates on concrete argument values (masked to arg widths).
    [[nodiscard]] LevelId evaluate(const std::vector<uint64_t>& args) const;

    /// True when every argument tuple maps to the same level — such a
    /// function is effectively a constant and its applications never
    /// change at run time.
    [[nodiscard]] bool is_constant(const Lattice& lat, LevelId* level) const;

    struct Entry {
        std::vector<uint64_t> args;
        LevelId level;
    };
    [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

private:
    std::string name_;
    std::vector<uint32_t> arg_widths_;
    LevelId default_;
    std::vector<Entry> entries_;
};

/// A complete security policy: the lattice plus the dependent-label
/// function table. Owned by the elaborated design; referenced by the
/// checker, solver, simulator, and verifier.
class SecurityPolicy {
public:
    SecurityPolicy() = default;
    explicit SecurityPolicy(Lattice lattice) : lattice_(std::move(lattice)) {}

    Lattice& lattice() { return lattice_; }
    [[nodiscard]] const Lattice& lattice() const { return lattice_; }

    FuncId add_function(LabelFunction fn);
    [[nodiscard]] std::optional<FuncId> find_function(std::string_view name) const;
    [[nodiscard]] const LabelFunction& function(FuncId id) const {
        return functions_[id];
    }
    [[nodiscard]] size_t function_count() const { return functions_.size(); }

private:
    Lattice lattice_;
    std::vector<LabelFunction> functions_;
};

} // namespace svlc
