// Security lattices (Denning 1976): a finite set of levels with a partial
// order ⊑ ("may flow to") closed under join/meet. The type system only
// needs: membership, the flow relation, and joins; meets are provided for
// completeness and for policy sanity checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace svlc {

/// Index of a level within its Lattice.
using LevelId = uint32_t;
constexpr LevelId kInvalidLevel = ~LevelId{0};

/// A finite security lattice built from named levels and declared flow
/// edges. Call `finalize` after declaring all levels/edges; it computes
/// the reflexive-transitive closure and join/meet tables and verifies the
/// order is a lattice (unique LUB/GLB for every pair).
class Lattice {
public:
    /// Declares a level; returns its id. Duplicate names return the
    /// existing id.
    LevelId add_level(std::string name);

    /// Declares that information may flow from `lo` to `hi` (lo ⊑ hi).
    void add_flow(LevelId lo, LevelId hi);

    /// Computes closure and join/meet tables. Returns false (and sets
    /// `error`) if the declared order is cyclic between distinct levels or
    /// some pair lacks a unique join or meet.
    bool finalize(std::string* error = nullptr);

    [[nodiscard]] bool finalized() const { return finalized_; }
    [[nodiscard]] size_t size() const { return names_.size(); }
    [[nodiscard]] const std::string& name(LevelId l) const { return names_[l]; }
    [[nodiscard]] std::optional<LevelId> find(std::string_view name) const;

    /// lo ⊑ hi ?
    [[nodiscard]] bool flows(LevelId lo, LevelId hi) const;
    [[nodiscard]] LevelId join(LevelId a, LevelId b) const;
    [[nodiscard]] LevelId meet(LevelId a, LevelId b) const;
    /// Global bottom/top (exist for every finite lattice once finalized).
    [[nodiscard]] LevelId bottom() const { return bottom_; }
    [[nodiscard]] LevelId top() const { return top_; }

    /// Standard policies used throughout the paper and tests.
    /// Two points with T ⊑ U: integrity (trusted may flow to untrusted).
    static Lattice two_point_integrity();
    /// Two points with P ⊑ S: confidentiality (public may flow to secret).
    static Lattice two_point_confidentiality();
    /// Four-point diamond: LOW ⊑ {M1, M2} ⊑ HIGH, M1 and M2 incomparable.
    static Lattice diamond();

private:
    std::vector<std::string> names_;
    std::vector<std::vector<uint8_t>> leq_; // leq_[a][b]: a ⊑ b
    std::vector<std::vector<LevelId>> join_;
    std::vector<std::vector<LevelId>> meet_;
    LevelId bottom_ = kInvalidLevel;
    LevelId top_ = kInvalidLevel;
    std::vector<std::pair<LevelId, LevelId>> edges_;
    bool finalized_ = false;
};

} // namespace svlc
