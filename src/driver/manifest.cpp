// Job discovery: manifest files, directory globs, builtin variants.
#include "driver/driver.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace svlc::driver {

namespace fs = std::filesystem;

namespace {

std::string trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

bool jobs_from_manifest(const std::string& manifest_path,
                        std::vector<JobSpec>& out, std::string& error) {
    std::ifstream in(manifest_path);
    if (!in) {
        error = "cannot open manifest '" + manifest_path + "'";
        return false;
    }
    fs::path base = fs::path(manifest_path).parent_path();
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string entry = trim(line);
        if (entry.empty() || entry[0] == '#')
            continue;
        std::istringstream toks(entry);
        std::string target, top;
        uint64_t timeout_ms = 0;
        uint64_t hunt_depth = 0;
        toks >> target;
        std::string tok;
        while (toks >> tok) {
            if (tok.rfind("top=", 0) == 0) {
                top = tok.substr(4);
            } else if (tok.rfind("timeout=", 0) == 0) {
                char* end = nullptr;
                std::string v = tok.substr(8);
                timeout_ms = std::strtoull(v.c_str(), &end, 10);
                if (v.empty() || (end && *end)) {
                    error = manifest_path + ":" + std::to_string(lineno) +
                            ": bad timeout '" + v + "'";
                    return false;
                }
            } else if (tok.rfind("hunt=", 0) == 0) {
                char* end = nullptr;
                std::string v = tok.substr(5);
                hunt_depth = std::strtoull(v.c_str(), &end, 10);
                if (v.empty() || (end && *end) || hunt_depth == 0) {
                    error = manifest_path + ":" + std::to_string(lineno) +
                            ": bad hunt depth '" + v + "'";
                    return false;
                }
            } else {
                error = manifest_path + ":" + std::to_string(lineno) +
                        ": unknown manifest attribute '" + tok + "'";
                return false;
            }
        }
        JobSpec spec;
        if (target.rfind("builtin:", 0) == 0) {
            if (!builtin_job(target, spec)) {
                error = manifest_path + ":" + std::to_string(lineno) +
                        ": unknown builtin '" + target + "'";
                return false;
            }
        } else {
            fs::path p(target);
            if (p.is_relative())
                p = base / p;
            spec.name = target;
            spec.path = p.string();
        }
        spec.top = top;
        spec.timeout_ms = timeout_ms;
        spec.hunt_depth = hunt_depth;
        out.push_back(std::move(spec));
    }
    return true;
}

bool jobs_from_directory(const std::string& dir, std::vector<JobSpec>& out,
                         std::string& error) {
    std::error_code ec;
    std::vector<std::string> paths;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".svlc")
            paths.push_back(it->path().string());
    }
    if (ec) {
        error = "cannot scan directory '" + dir + "': " + ec.message();
        return false;
    }
    if (paths.empty()) {
        error = "no .svlc files under '" + dir + "'";
        return false;
    }
    std::sort(paths.begin(), paths.end());
    for (auto& p : paths) {
        JobSpec spec;
        spec.name = p;
        spec.path = p;
        out.push_back(std::move(spec));
    }
    return true;
}

bool collect_jobs(const std::string& target, std::vector<JobSpec>& out,
                  std::string& error) {
    if (target.rfind("builtin:", 0) == 0) {
        JobSpec spec;
        if (!builtin_job(target, spec)) {
            error = "unknown builtin '" + target + "'";
            return false;
        }
        out.push_back(std::move(spec));
        return true;
    }
    std::error_code ec;
    if (fs::is_directory(target, ec))
        return jobs_from_directory(target, out, error);
    if (fs::path(target).extension() == ".svlc") {
        JobSpec spec;
        spec.name = target;
        spec.path = target;
        out.push_back(std::move(spec));
        return true;
    }
    return jobs_from_manifest(target, out, error);
}

} // namespace svlc::driver
