// Batch-verification driver: runs the full parse → elaborate →
// well-formedness → typecheck pipeline over a *set* of jobs on a worker
// thread pool, sharing one memoizing EntailCache across all of them.
//
// Design points:
//   * Deterministic aggregation — results land in input order regardless
//     of which worker finishes first, and only Proven (witness-free)
//     entailment verdicts are shared through the cache, so a batch's
//     report is byte-identical for --jobs 1 and --jobs 8.
//   * Per-job isolation — each job owns its SourceManager, diagnostics,
//     design, and entailment engine; the only shared state is the
//     thread-safe cache. A cooperative per-job deadline cuts off
//     enumeration blow-ups so one pathological design cannot stall the
//     batch.
//   * Retry-once — a job that throws (OOM, filesystem race) is retried
//     one time before being reported as an error.
#pragma once

#include "check/typecheck.hpp"
#include "incr/store.hpp"
#include "pipeline/compilation.hpp"
#include "solver/entail_cache.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace svlc::driver {

struct JobSpec {
    /// Display name (file path, or "builtin:<variant>").
    std::string name;
    /// File to read; empty when `source` carries the text directly.
    std::string path;
    /// Inline source text (builtins and tests).
    std::string source;
    /// Top module override; empty = auto-detect.
    std::string top;
    /// Per-job deadline override in milliseconds; 0 = use the driver's
    /// DriverOptions::timeout_ms.
    uint64_t timeout_ms = 0;
    /// Non-zero turns this into a *hunt* job: instead of the static
    /// checker, run the bounded symbolic leak hunter (src/hunt) to this
    /// depth. Hunt jobs bypass the verdict store — their outcome depends
    /// on search parameters the job fingerprint does not cover.
    uint64_t hunt_depth = 0;
};

enum class JobStatus {
    Secure,   ///< type-checked, no failing obligations
    Rejected, ///< flow violations (or structural errors) reported
    Error,    ///< could not run: unreadable file, exception (after retry)
    Timeout,  ///< gave up at the per-job deadline
};

const char* job_status_name(JobStatus s);

struct JobResult {
    std::string name;
    JobStatus status = JobStatus::Error;
    /// Verdict replayed from the persistent store (fingerprint hit); the
    /// job was not parsed, elaborated, or checked this run.
    bool skipped = false;
    /// Job fingerprint (64 hex chars) when a store is configured.
    std::string fingerprint;
    int attempts = 1;
    size_t obligations = 0;
    size_t failed = 0;
    size_t downgrades = 0;
    /// Per-obligation records for every non-proven obligation (stable
    /// ids, verdicts, counterexample witnesses). Survives store replay.
    std::vector<pipeline::ObligationRecord> flagged;
    /// Obligation-level incrementality counters: how many of this job's
    /// obligations were replayed from per-obligation store records vs.
    /// decided by the entailment engine. A whole-job fingerprint hit
    /// counts every obligation as replayed. Telemetry (full-mode JSON
    /// and --stats only); never part of the stable verdict set.
    size_t obligations_replayed = 0;
    size_t obligations_solved = 0;
    solver::EntailmentEngine::Stats solver;
    /// Rendered diagnostics (with source snippets), empty when clean.
    std::string diagnostics;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
};

struct DriverOptions {
    /// Worker threads; 0 = hardware concurrency.
    size_t jobs = 0;
    /// Per-job deadline in milliseconds; 0 = unlimited.
    uint64_t timeout_ms = 0;
    /// Share a memoizing entailment cache across jobs.
    bool use_cache = true;
    size_t cache_capacity = solver::EntailCache::kDefaultCapacity;
    /// Persistent store directory (incr/store.hpp); empty disables
    /// persistence. When set, unchanged jobs are answered from stored
    /// verdicts and the entailment cache survives across processes.
    std::string store_dir;
    /// Proven entries kept in the persisted entailment cache.
    size_t store_entail_budget = incr::StoreOptions{}.entail_budget;
    /// Checker configuration applied to every job (mode, solver budgets).
    check::CheckOptions check;
};

struct BatchReport {
    std::vector<JobResult> results;
    /// Cache counter deltas for this run plus the final entry count.
    solver::EntailCache::Stats cache;
    bool cache_enabled = true;
    /// Persistent-store counter deltas for this run (when enabled).
    incr::ArtifactStore::Stats store;
    bool store_enabled = false;
    size_t workers = 1;
    uint64_t timeout_ms = 0;
    /// Entailment backend id ("enum"/"prune") the batch ran with.
    std::string solver_backend;
    double wall_ms = 0.0;

    [[nodiscard]] size_t count(JobStatus s) const;
    /// Jobs answered from the store without re-verification.
    [[nodiscard]] size_t skipped_count() const;
    /// No infrastructure failures (Error/Timeout). Rejected designs are a
    /// *successful* verification outcome.
    [[nodiscard]] bool all_ran() const;
    /// Aggregated solver stats over all jobs.
    [[nodiscard]] solver::EntailmentEngine::Stats solver_totals() const;

    /// Machine-readable report (schema svlc-batch-report/v2; v2 added
    /// per-obligation records with stable ids and witnesses, and the
    /// solver backend in the config block). With `full` off, timings and
    /// solver/cache telemetry are omitted and the output depends only on
    /// the verification verdicts — byte-identical across runs, worker
    /// counts, and warm/cold store states.
    [[nodiscard]] std::string to_json(bool full = true) const;
    /// Human-readable per-job table + totals; deterministic (no timings).
    [[nodiscard]] std::string summary() const;
};

/// The single-job verification entry shared by the batch driver and the
/// serve daemon: (re)loads `text` into `comp` — whose options carry the
/// checker configuration — runs the pipeline, and fills a JobResult with
/// verdict, per-obligation records, solver stats, diagnostics, and
/// timings. Installs spec.top, the per-run deadline (spec.timeout_ms,
/// falling back to `default_timeout_ms`; 0 = unlimited), and `cache`
/// (may be null) into comp's options before reloading, so a serve
/// session can call this repeatedly on one hot Compilation.
///
/// When `store` is non-null, an incr::ObligationReplayer is installed for
/// the check phase: obligations whose structural fingerprint has a stored
/// record replay their verdict (and re-render diagnostics) instead of
/// re-solving, and freshly solved verdicts are written through. The
/// resulting report is byte-identical to a store-less run; only the
/// obligations_replayed/obligations_solved telemetry differs.
JobResult verify_text(pipeline::Compilation& comp, const JobSpec& spec,
                      const std::string& text, uint64_t default_timeout_ms,
                      solver::EntailCache* cache,
                      incr::ArtifactStore* store = nullptr);

/// The hunt-job counterpart of verify_text: elaborates `text` and runs
/// the bounded symbolic leak hunter to spec.hunt_depth. A confirmed leak
/// trace maps to Rejected, a bounded no-leak certificate (or a
/// no-secrets design) to Secure; the rendered hunt report travels in
/// JobResult::diagnostics. Shared by the batch driver and the
/// distributed worker so both render hunt jobs identically.
JobResult hunt_text(const JobSpec& spec, const std::string& text);

/// Persists a job's verdict under fingerprint `fp`. Only deterministic
/// verdicts (Secure/Rejected) are stored — a timeout depends on the
/// deadline and an error on transient conditions, so replaying either
/// could mask a now-healthy run. Returns true when stored.
bool store_job_verdict(incr::ArtifactStore& store, const std::string& fp,
                       const JobResult& res);

/// Materializes the JobResult a stored verdict replays: the exact
/// verdict-set fields a fresh run would report (timings and solver
/// stats zero, `skipped` set when the verdict came from a store rather
/// than a fresh remote run). Shared by the batch driver's fingerprint
/// gate and the distributed coordinator/worker (src/dist), so every
/// replay path renders one job identically.
JobResult job_result_from_verdict(const std::string& name,
                                  const std::string& fp,
                                  incr::StoredVerdict verdict, bool skipped);

class VerificationDriver {
public:
    explicit VerificationDriver(DriverOptions opts = {});

    /// Runs every job and aggregates results in input order. Can be
    /// called repeatedly; the entailment cache stays warm across runs.
    BatchReport run(const std::vector<JobSpec>& jobs);

    [[nodiscard]] solver::EntailCache& cache() { return cache_; }
    /// Non-null when DriverOptions::store_dir is set and the store
    /// opened successfully.
    [[nodiscard]] incr::ArtifactStore* store() { return store_.get(); }

private:
    JobResult run_job(const JobSpec& spec);
    JobResult run_job_once(const JobSpec& spec, const std::string& text);

    DriverOptions opts_;
    solver::EntailCache cache_;
    std::unique_ptr<incr::ArtifactStore> store_;
    bool store_loaded_ = false;
};

// --- backend differential harness ------------------------------------------

/// One disagreement between the enum and prune entailment backends. Any
/// instance is a backend-contract violation: the backends are required to
/// be verdict- and witness-equivalent.
struct BackendDiff {
    std::string job;
    /// What diverged: "status", "obligations", "failed", or a stable
    /// obligation id (for per-obligation record mismatches).
    std::string field;
    /// The backend that disagreed with the reference ("prune", "cdcl").
    std::string backend;
    /// Reference (enum) value vs the disagreeing backend's value.
    std::string enum_value;
    std::string other_value;
};

/// Runs every job once per entailment backend — each run with its own
/// driver and cache, no persistent store — and returns every disagreement
/// with the enum reference (empty = contract holds for every backend).
/// `base` supplies checker budgets and worker count; its backend and
/// store settings are overridden.
std::vector<BackendDiff> diff_backends(const std::vector<JobSpec>& jobs,
                                       const DriverOptions& base = {});

// --- job discovery ---------------------------------------------------------

/// The four generated evaluation-processor variants (src/proc), named
/// builtin:labeled, builtin:baseline, builtin:vulnerable, builtin:quad.
std::vector<JobSpec> builtin_cpu_jobs();

/// Resolves "builtin:<variant>" to an inline-source job. Returns false
/// for an unknown variant.
bool builtin_job(const std::string& name, JobSpec& out);

/// Reads a manifest: one job per line, `#` comments. Each line is a path
/// (resolved relative to the manifest's directory) or builtin:<variant>,
/// optionally followed by `top=<module>`, `timeout=<ms>`, and/or
/// `hunt=<depth>` (run the symbolic leak hunter instead of the checker).
bool jobs_from_manifest(const std::string& manifest_path,
                        std::vector<JobSpec>& out, std::string& error);

/// Recursively collects *.svlc files, sorted by path for determinism.
bool jobs_from_directory(const std::string& dir, std::vector<JobSpec>& out,
                         std::string& error);

/// Dispatch: directory → glob, "builtin:X" → builtin, *.svlc → single
/// file, anything else → manifest.
bool collect_jobs(const std::string& target, std::vector<JobSpec>& out,
                  std::string& error);

} // namespace svlc::driver
