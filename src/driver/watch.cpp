#include "driver/watch.hpp"

#include "incr/fingerprint.hpp"
#include "support/fsutil.hpp"

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace svlc::driver {

namespace {

namespace fs = std::filesystem;

/// Last observed state of one watched job.
struct WatchedJob {
    /// stat() signature; a change is the cheap trigger for re-hashing.
    StatSig sig;
    /// Full verification fingerprint; a change means re-verify.
    std::string fingerprint;
    /// Last verdict, for transition reporting ("" before first run).
    std::string verdict;
};

} // namespace

bool stat_file(const std::string& path, StatSig& out) {
    std::error_code ec;
    auto t = fs::last_write_time(path, ec);
    if (ec)
        return false;
    auto sz = fs::file_size(path, ec);
    if (ec)
        return false;
    out.mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t.time_since_epoch())
                       .count();
    out.size = sz;
    return true;
}

int64_t file_clock_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               fs::file_time_type::clock::now().time_since_epoch())
        .count();
}

bool stat_proves_unchanged(const StatSig& prev, const StatSig& cur,
                           int64_t now_ns) {
    if (prev.mtime_ns < 0 || !(prev == cur))
        return false;
    // A file touched within the racy window may have been rewritten again
    // without moving a coarse-granularity timestamp — don't trust it.
    return now_ns - cur.mtime_ns >= kStatRacyWindowNs;
}

int run_watch(const std::string& target, const WatchOptions& opts,
              std::FILE* out, std::FILE* err) {
    // One driver for the whole session: the entailment cache stays warm
    // across iterations, and the store (if any) is loaded once.
    VerificationDriver drv(opts.driver);

    std::map<std::string, WatchedJob> state; // keyed by job name
    uint64_t iteration = 0;

    std::fprintf(out, "watching %s (poll %llu ms%s)\n", target.c_str(),
                 static_cast<unsigned long long>(opts.interval_ms),
                 drv.store() ? ", persistent store on" : "");

    for (;;) {
        ++iteration;

        std::vector<JobSpec> jobs;
        std::string error;
        bool collected = collect_jobs(target, jobs, error);
        if (opts.include_cpus) {
            auto cpus = builtin_cpu_jobs();
            jobs.insert(jobs.end(), std::make_move_iterator(cpus.begin()),
                        std::make_move_iterator(cpus.end()));
        }
        if (!collected && jobs.empty()) {
            // On iteration 1 a bad target is a usage error; later it is
            // transient (e.g. the last .svlc file was deleted mid-edit).
            if (iteration == 1) {
                std::fprintf(err, "%s\n", error.c_str());
                return 2;
            }
            std::fprintf(out, "[watch #%llu] %s; waiting\n",
                         static_cast<unsigned long long>(iteration),
                         error.c_str());
        }

        // Dirty detection: stat first, hash only when the stat signature
        // moved or is too fresh to trust (see stat_proves_unchanged),
        // then compare fingerprints so a `touch` without a content change
        // stays clean.
        std::vector<JobSpec> dirty;
        std::map<std::string, WatchedJob> next_state;
        int64_t now_ns = file_clock_now_ns();
        for (const auto& spec : jobs) {
            auto prev = state.find(spec.name);
            WatchedJob w;
            bool readable = true;
            if (!spec.path.empty()) {
                if (!stat_file(spec.path, w.sig))
                    readable = false;
                else if (prev != state.end() &&
                         stat_proves_unchanged(prev->second.sig, w.sig,
                                               now_ns))
                    w.fingerprint = prev->second.fingerprint;
            }
            if (readable && w.fingerprint.empty()) {
                std::string text = spec.source;
                if (!spec.path.empty() && !read_file(spec.path, text))
                    readable = false;
                else
                    w.fingerprint = incr::job_fingerprint(
                        spec.name, text, spec.top, opts.driver.check);
            }
            if (!readable) {
                // Vanished between stat and read (editor save dance);
                // keep the old state and retry next poll.
                if (prev != state.end())
                    next_state[spec.name] = prev->second;
                continue;
            }
            if (prev != state.end())
                w.verdict = prev->second.verdict;
            if (prev == state.end() ||
                prev->second.fingerprint != w.fingerprint)
                dirty.push_back(spec);
            next_state[spec.name] = std::move(w);
        }
        for (const auto& [name, w] : state)
            if (!next_state.count(name))
                std::fprintf(out, "[watch #%llu] %s removed\n",
                             static_cast<unsigned long long>(iteration),
                             name.c_str());
        state = std::move(next_state);

        if (!dirty.empty()) {
            BatchReport report = drv.run(dirty);
            std::fprintf(
                out,
                "[watch #%llu] %zu/%zu job(s) dirty, re-verified in %.1f "
                "ms (%zu from store)\n",
                static_cast<unsigned long long>(iteration), dirty.size(),
                jobs.size(), report.wall_ms, report.skipped_count());
            size_t cycle_solved = 0, cycle_replayed = 0;
            for (const auto& r : report.results) {
                cycle_solved += r.obligations_solved;
                cycle_replayed += r.obligations_replayed;
            }
            std::fprintf(out,
                         "[watch #%llu] %zu obligation(s) re-solved, %zu "
                         "replayed, %.1f ms\n",
                         static_cast<unsigned long long>(iteration),
                         cycle_solved, cycle_replayed, report.wall_ms);
            for (const auto& r : report.results) {
                std::string verdict = job_status_name(r.status);
                auto it = state.find(r.name);
                std::string prev_verdict =
                    it != state.end() ? it->second.verdict : "";
                if (prev_verdict.empty())
                    std::fprintf(out, "  %-10s %s\n", verdict.c_str(),
                                 r.name.c_str());
                else if (prev_verdict != verdict)
                    std::fprintf(out, "  %-10s %s (was %s)\n",
                                 verdict.c_str(), r.name.c_str(),
                                 prev_verdict.c_str());
                else
                    std::fprintf(out, "  %-10s %s (unchanged)\n",
                                 verdict.c_str(), r.name.c_str());
                if (it != state.end())
                    it->second.verdict = verdict;
            }
        } else {
            std::fprintf(out, "[watch #%llu] clean (%zu job(s))\n",
                         static_cast<unsigned long long>(iteration),
                         jobs.size());
        }
        std::fflush(out);

        if (opts.max_iterations && iteration >= opts.max_iterations)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.interval_ms));
    }
}

} // namespace svlc::driver
