// `svlc watch` — a resident edit–recheck loop over a batch target.
//
// Each iteration polls the job set: the target is re-collected (new and
// deleted .svlc files are picked up), file jobs are stat'ed, and only
// files whose mtime/size moved are re-read and re-hashed. Jobs whose
// *fingerprint* changed (content hash ⊔ top ⊔ checker configuration) are
// re-verified through the batch driver — sharing its warm entailment
// cache and, when a store is configured, its persistent verdicts — and a
// per-iteration delta report (dirty set, verdict transitions, timing) is
// printed. Unchanged jobs cost one stat() each.
#pragma once

#include "driver/driver.hpp"

#include <cstdio>

namespace svlc::driver {

struct WatchOptions {
    /// Driver configuration (workers, timeouts, cache, store).
    DriverOptions driver;
    /// Poll period between iterations.
    uint64_t interval_ms = 500;
    /// Stop after this many iterations; 0 = run until killed. The first
    /// iteration always verifies the full job set (modulo store hits).
    uint64_t max_iterations = 0;
    /// Append the builtin CPU variants to the watched set.
    bool include_cpus = false;
};

/// Runs the watch loop; delta reports go to `out`, infrastructure
/// errors to `err`. Returns 0 on clean exit (iteration budget reached),
/// 2 when the target cannot be collected at startup.
int run_watch(const std::string& target, const WatchOptions& opts,
              std::FILE* out, std::FILE* err);

// --- stat-based dirty detection --------------------------------------------

/// stat() signature of a watched file. Both fields matching the previous
/// observation is a *candidate* reason to skip re-hashing; see
/// stat_proves_unchanged for when it may actually be trusted.
struct StatSig {
    /// last_write_time in ns since the file clock's epoch; -1 = unset.
    int64_t mtime_ns = -1;
    uint64_t size = 0;

    friend bool operator==(const StatSig&, const StatSig&) = default;
};

/// Reads mtime+size; false when the file vanished mid-poll.
bool stat_file(const std::string& path, StatSig& out);

/// Current time on the same clock/epoch as StatSig::mtime_ns.
int64_t file_clock_now_ns();

/// Window within which an unchanged (mtime, size) pair is NOT trusted.
/// Filesystems and archive tools commonly truncate timestamps to whole
/// seconds, so a same-size rewrite within the same second can leave the
/// signature identical; like git's index racy-check, anything modified
/// less than ~2 s ago gets its content re-hashed instead.
constexpr int64_t kStatRacyWindowNs = 2'000'000'000;

/// True when `cur` matching `prev` proves the content is unchanged:
/// identical signature and an mtime old enough (relative to `now_ns`)
/// that even a second-granularity timestamp would have moved on rewrite.
bool stat_proves_unchanged(const StatSig& prev, const StatSig& cur,
                           int64_t now_ns);

} // namespace svlc::driver
