// `svlc watch` — a resident edit–recheck loop over a batch target.
//
// Each iteration polls the job set: the target is re-collected (new and
// deleted .svlc files are picked up), file jobs are stat'ed, and only
// files whose mtime/size moved are re-read and re-hashed. Jobs whose
// *fingerprint* changed (content hash ⊔ top ⊔ checker configuration) are
// re-verified through the batch driver — sharing its warm entailment
// cache and, when a store is configured, its persistent verdicts — and a
// per-iteration delta report (dirty set, verdict transitions, timing) is
// printed. Unchanged jobs cost one stat() each.
#pragma once

#include "driver/driver.hpp"

#include <cstdio>

namespace svlc::driver {

struct WatchOptions {
    /// Driver configuration (workers, timeouts, cache, store).
    DriverOptions driver;
    /// Poll period between iterations.
    uint64_t interval_ms = 500;
    /// Stop after this many iterations; 0 = run until killed. The first
    /// iteration always verifies the full job set (modulo store hits).
    uint64_t max_iterations = 0;
    /// Append the builtin CPU variants to the watched set.
    bool include_cpus = false;
};

/// Runs the watch loop; delta reports go to `out`, infrastructure
/// errors to `err`. Returns 0 on clean exit (iteration budget reached),
/// 2 when the target cannot be collected at startup.
int run_watch(const std::string& target, const WatchOptions& opts,
              std::FILE* out, std::FILE* err);

} // namespace svlc::driver
