#include "driver/driver.hpp"

#include "hunt/hunter.hpp"
#include "incr/fingerprint.hpp"
#include "incr/replay.hpp"
#include "pipeline/compilation.hpp"
#include "proc/sources.hpp"
#include "support/fsutil.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#ifdef __linux__
#include <ctime>
#endif

namespace svlc::driver {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// Per-thread CPU time in milliseconds (wall-clock fallback elsewhere).
double thread_cpu_ms() {
#ifdef __linux__
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) * 1e3 +
               static_cast<double>(ts.tv_nsec) * 1e-6;
#endif
    return std::chrono::duration<double, std::milli>(
               Clock::now().time_since_epoch())
        .count();
}

} // namespace

const char* job_status_name(JobStatus s) {
    switch (s) {
    case JobStatus::Secure: return "secure";
    case JobStatus::Rejected: return "rejected";
    case JobStatus::Error: return "error";
    case JobStatus::Timeout: return "timeout";
    }
    return "unknown";
}

VerificationDriver::VerificationDriver(DriverOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_capacity) {
    if (!opts_.store_dir.empty()) {
        incr::StoreOptions sopts;
        sopts.dir = opts_.store_dir;
        sopts.entail_budget = opts_.store_entail_budget;
        auto store = std::make_unique<incr::ArtifactStore>(sopts);
        std::string error;
        if (store->open(error)) {
            store_ = std::move(store);
        } else {
            // A broken store degrades to a cold run, never a failed one.
            std::fprintf(stderr, "svlc: store disabled: %s\n",
                         error.c_str());
        }
    }
}

JobResult verify_text(pipeline::Compilation& comp, const JobSpec& spec,
                      const std::string& text, uint64_t default_timeout_ms,
                      solver::EntailCache* cache,
                      incr::ArtifactStore* store) {
    JobResult res;
    res.name = spec.name;

    Clock::time_point start = Clock::now();
    double cpu_start = thread_cpu_ms();
    uint64_t timeout_ms =
        spec.timeout_ms ? spec.timeout_ms : default_timeout_ms;
    Clock::time_point deadline{};
    if (timeout_ms)
        deadline = start + std::chrono::milliseconds(timeout_ms);
    auto finish = [&](JobStatus status) {
        res.status = status;
        res.wall_ms = ms_since(start);
        res.cpu_ms = thread_cpu_ms() - cpu_start;
        return res;
    };

    comp.options().top = spec.top;
    comp.options().check.solver.deadline = deadline;
    comp.options().check.solver.cache = cache;
    comp.options().check.oracle = nullptr;
    comp.reload_text(text, spec.name);
    if (!comp.elaborate()) {
        res.diagnostics = comp.render_diagnostics();
        return finish(JobStatus::Rejected);
    }
    // Obligation-granular replay: the oracle lives for exactly this check
    // phase (it borrows the elaborated design), and the options pointer is
    // cleared right after so a hot serve Compilation can never dangle.
    std::optional<incr::ObligationReplayer> oracle;
    if (store) {
        oracle.emplace(*store, *comp.design(), comp.options().check);
        comp.options().check.oracle = &*oracle;
    }
    const check::CheckResult& cres = *comp.check();
    comp.options().check.oracle = nullptr;

    res.obligations = cres.obligations.size();
    res.obligations_replayed = cres.obligations_replayed;
    res.obligations_solved = cres.obligations_solved;
    res.failed = cres.failed;
    res.downgrades = cres.downgrade_count;
    for (const check::Obligation& ob : cres.obligations)
        if (!ob.result.proven())
            res.flagged.push_back(pipeline::make_obligation_record(
                ob, *comp.design(), &comp.sources()));
    res.solver = cres.solver_stats;
    res.diagnostics = comp.render_diagnostics();
    if (cres.timed_out)
        return finish(JobStatus::Timeout);
    return finish(cres.ok ? JobStatus::Secure : JobStatus::Rejected);
}

JobResult hunt_text(const JobSpec& spec, const std::string& text) {
    JobResult res;
    res.name = spec.name;
    Clock::time_point start = Clock::now();
    double cpu_start = thread_cpu_ms();
    auto finish = [&](JobStatus status) {
        res.status = status;
        res.wall_ms = ms_since(start);
        res.cpu_ms = thread_cpu_ms() - cpu_start;
        return res;
    };

    pipeline::CompilationOptions popts;
    popts.top = spec.top;
    pipeline::Compilation comp(std::move(popts));
    comp.load_text(text, spec.name);
    if (!comp.elaborate()) {
        res.diagnostics = comp.render_diagnostics();
        return finish(JobStatus::Rejected);
    }
    hunt::HuntOptions hopts;
    hopts.depth = spec.hunt_depth;
    hunt::HuntResult hr = hunt::hunt(*comp.design(), hopts);
    res.diagnostics = hunt::render_hunt(*comp.design(), hr);
    // A confirmed leak trace is the hunt analogue of a flow violation; a
    // bounded certificate (or a secret-free design) the analogue of a
    // clean check. Hunt never times out — the depth bound is the budget.
    return finish(hr.verdict == hunt::HuntVerdict::Leak
                      ? JobStatus::Rejected
                      : JobStatus::Secure);
}

bool store_job_verdict(incr::ArtifactStore& store, const std::string& fp,
                       const JobResult& res) {
    if (fp.empty() || (res.status != JobStatus::Secure &&
                       res.status != JobStatus::Rejected))
        return false;
    incr::StoredVerdict v;
    v.secure = res.status == JobStatus::Secure;
    v.obligations = res.obligations;
    v.failed = res.failed;
    v.downgrades = res.downgrades;
    v.diagnostics = res.diagnostics;
    v.flagged = res.flagged;
    store.store_verdict(fp, v);
    return true;
}

JobResult job_result_from_verdict(const std::string& name,
                                  const std::string& fp,
                                  incr::StoredVerdict verdict, bool skipped) {
    JobResult res;
    res.name = name;
    res.status = verdict.secure ? JobStatus::Secure : JobStatus::Rejected;
    res.skipped = skipped;
    res.fingerprint = fp;
    res.attempts = skipped ? 0 : 1;
    res.obligations = verdict.obligations;
    res.failed = verdict.failed;
    res.downgrades = verdict.downgrades;
    // A whole-job hit replays every proof without touching the pipeline.
    res.obligations_replayed = verdict.obligations;
    res.flagged = std::move(verdict.flagged);
    res.diagnostics = std::move(verdict.diagnostics);
    return res;
}

JobResult VerificationDriver::run_job_once(const JobSpec& spec,
                                           const std::string& text) {
    if (spec.hunt_depth > 0)
        return hunt_text(spec, text);
    pipeline::CompilationOptions popts;
    popts.check = opts_.check;
    pipeline::Compilation comp(std::move(popts));
    return verify_text(comp, spec, text, opts_.timeout_ms,
                       opts_.use_cache ? &cache_ : nullptr, store_.get());
}

JobResult VerificationDriver::run_job(const JobSpec& spec) {
    std::string text = spec.source;
    if (text.empty() && !spec.path.empty() && !read_file(spec.path, text)) {
        JobResult res;
        res.name = spec.name;
        res.status = JobStatus::Error;
        res.diagnostics = "cannot open '" + spec.path + "'";
        return res;
    }

    // Fingerprint gate: an unchanged job (same source bytes, top, checker
    // configuration, tool version) replays its stored verdict without
    // touching the pipeline at all. Hunt jobs stay outside the store:
    // the fingerprint does not cover search depth or seed, so a cached
    // check verdict and a hunt outcome must never alias.
    std::string fp;
    if (store_ && spec.hunt_depth == 0) {
        fp = incr::job_fingerprint(spec.name, text, spec.top, opts_.check);
        if (auto hit = store_->load_verdict(fp))
            return job_result_from_verdict(spec.name, fp, std::move(*hit),
                                           /*skipped=*/true);
    }

    // Retry once on transient failure (allocation failure, filesystem
    // race, ...). Deterministic verdicts — parse errors, flow violations,
    // deadline expiry — are not retried.
    for (int attempt = 1;; ++attempt) {
        try {
            JobResult res = run_job_once(spec, text);
            res.attempts = attempt;
            res.fingerprint = fp;
            if (store_)
                store_job_verdict(*store_, fp, res);
            return res;
        } catch (const std::exception& e) {
            if (attempt >= 2) {
                JobResult res;
                res.name = spec.name;
                res.status = JobStatus::Error;
                res.attempts = attempt;
                res.diagnostics =
                    std::string("job failed after retry: ") + e.what();
                return res;
            }
        } catch (...) {
            if (attempt >= 2) {
                JobResult res;
                res.name = spec.name;
                res.status = JobStatus::Error;
                res.attempts = attempt;
                res.diagnostics = "job failed after retry: unknown exception";
                return res;
            }
        }
    }
}

BatchReport VerificationDriver::run(const std::vector<JobSpec>& jobs) {
    BatchReport report;
    report.cache_enabled = opts_.use_cache;
    report.store_enabled = store_ != nullptr;
    report.timeout_ms = opts_.timeout_ms;
    report.solver_backend = solver::backend_id(opts_.check.solver.backend);
    report.results.resize(jobs.size());

    // Warm the in-memory entailment cache from disk once per driver;
    // later runs in the same process are already warmer than the store.
    if (store_ && !store_loaded_) {
        store_loaded_ = true;
        if (opts_.use_cache)
            store_->load_entail(cache_);
    }
    incr::ArtifactStore::Stats store_before;
    if (store_)
        store_before = store_->stats();

    size_t workers = opts_.jobs;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers = std::min(workers, jobs.size() ? jobs.size() : size_t{1});
    report.workers = workers;

    solver::EntailCache::Stats cache_before = cache_.stats();
    Clock::time_point start = Clock::now();

    // Pull-based pool with stable result slots: each worker claims the
    // next unclaimed job index and writes into results[i], so aggregation
    // order never depends on scheduling.
    std::atomic<size_t> next{0};
    auto work = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            report.results[i] = run_job(jobs[i]);
        }
    };
    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t t = 0; t < workers; ++t)
            pool.emplace_back(work);
        for (auto& th : pool)
            th.join();
    }

    // Persist what this run learned: newly decided Proven entries merge
    // into the on-disk cache (budgeted, oldest first out).
    if (store_ && opts_.use_cache)
        store_->flush_entail(cache_);

    report.wall_ms = ms_since(start);
    report.cache = cache_.stats().since(cache_before);
    if (store_) {
        incr::ArtifactStore::Stats now = store_->stats();
        report.store.verdict_hits =
            now.verdict_hits - store_before.verdict_hits;
        report.store.verdict_misses =
            now.verdict_misses - store_before.verdict_misses;
        report.store.verdict_stores =
            now.verdict_stores - store_before.verdict_stores;
        report.store.obligation_hits =
            now.obligation_hits - store_before.obligation_hits;
        report.store.obligation_misses =
            now.obligation_misses - store_before.obligation_misses;
        report.store.obligation_stores =
            now.obligation_stores - store_before.obligation_stores;
        report.store.entail_loaded = now.entail_loaded;
        report.store.entail_flushed = now.entail_flushed;
        report.store.entail_evicted = now.entail_evicted;
        report.store.corrupt_discarded = now.corrupt_discarded;
        report.store.legacy_discarded = now.legacy_discarded;
    }
    return report;
}

// --- job discovery ---------------------------------------------------------

bool builtin_job(const std::string& name, JobSpec& out) {
    std::string variant = name;
    if (variant.rfind("builtin:", 0) == 0)
        variant = variant.substr(8);
    out = {};
    out.name = "builtin:" + variant;
    if (variant == "labeled")
        out.source = proc::labeled_cpu_source();
    else if (variant == "baseline")
        out.source = proc::baseline_cpu_source();
    else if (variant == "vulnerable")
        out.source = proc::vulnerable_cpu_source();
    else if (variant == "quad")
        out.source = proc::quad_core_source();
    else
        return false;
    return true;
}

std::vector<JobSpec> builtin_cpu_jobs() {
    std::vector<JobSpec> jobs(4);
    builtin_job("labeled", jobs[0]);
    builtin_job("baseline", jobs[1]);
    builtin_job("vulnerable", jobs[2]);
    builtin_job("quad", jobs[3]);
    return jobs;
}

} // namespace svlc::driver
