#include "driver/driver.hpp"

#include "parse/parser.hpp"
#include "proc/sources.hpp"
#include "sem/elaborate.hpp"
#include "sem/wellformed.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <ctime>
#endif

namespace svlc::driver {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// Per-thread CPU time in milliseconds (wall-clock fallback elsewhere).
double thread_cpu_ms() {
#ifdef __linux__
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) * 1e3 +
               static_cast<double>(ts.tv_nsec) * 1e-6;
#endif
    return std::chrono::duration<double, std::milli>(
               Clock::now().time_since_epoch())
        .count();
}

} // namespace

const char* job_status_name(JobStatus s) {
    switch (s) {
    case JobStatus::Secure: return "secure";
    case JobStatus::Rejected: return "rejected";
    case JobStatus::Error: return "error";
    case JobStatus::Timeout: return "timeout";
    }
    return "unknown";
}

VerificationDriver::VerificationDriver(DriverOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_capacity) {}

JobResult VerificationDriver::run_job_once(const JobSpec& spec) {
    JobResult res;
    res.name = spec.name;

    Clock::time_point start = Clock::now();
    double cpu_start = thread_cpu_ms();
    uint64_t timeout_ms = spec.timeout_ms ? spec.timeout_ms : opts_.timeout_ms;
    Clock::time_point deadline{};
    if (timeout_ms)
        deadline = start + std::chrono::milliseconds(timeout_ms);
    auto finish = [&](JobStatus status) {
        res.status = status;
        res.wall_ms = ms_since(start);
        res.cpu_ms = thread_cpu_ms() - cpu_start;
        return res;
    };

    std::string text = spec.source;
    if (text.empty() && !spec.path.empty()) {
        std::ifstream in(spec.path);
        if (!in) {
            res.diagnostics = "cannot open '" + spec.path + "'";
            return finish(JobStatus::Error);
        }
        std::stringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    SourceManager sm;
    DiagnosticEngine diags(&sm);
    ast::CompilationUnit unit =
        Parser::parse_text(text, sm, diags, spec.name);
    std::unique_ptr<hir::Design> design;
    if (!diags.has_errors()) {
        sem::ElaborateOptions eopts;
        eopts.top = spec.top;
        design = sem::elaborate(unit, diags, eopts);
    }
    if (design && !diags.has_errors())
        sem::analyze_wellformed(*design, diags);
    if (!design || diags.has_errors()) {
        res.diagnostics = diags.render();
        return finish(JobStatus::Rejected);
    }

    check::CheckOptions copts = opts_.check;
    copts.solver.deadline = deadline;
    copts.solver.cache = opts_.use_cache ? &cache_ : nullptr;
    check::CheckResult cres = check::check_design(*design, diags, copts);

    res.obligations = cres.obligations.size();
    res.failed = cres.failed;
    res.downgrades = cres.downgrade_count;
    res.solver = cres.solver_stats;
    res.diagnostics = diags.render();
    if (cres.timed_out)
        return finish(JobStatus::Timeout);
    return finish(cres.ok ? JobStatus::Secure : JobStatus::Rejected);
}

JobResult VerificationDriver::run_job(const JobSpec& spec) {
    // Retry once on transient failure (allocation failure, filesystem
    // race, ...). Deterministic verdicts — parse errors, flow violations,
    // deadline expiry — are not retried.
    for (int attempt = 1;; ++attempt) {
        try {
            JobResult res = run_job_once(spec);
            res.attempts = attempt;
            return res;
        } catch (const std::exception& e) {
            if (attempt >= 2) {
                JobResult res;
                res.name = spec.name;
                res.status = JobStatus::Error;
                res.attempts = attempt;
                res.diagnostics =
                    std::string("job failed after retry: ") + e.what();
                return res;
            }
        } catch (...) {
            if (attempt >= 2) {
                JobResult res;
                res.name = spec.name;
                res.status = JobStatus::Error;
                res.attempts = attempt;
                res.diagnostics = "job failed after retry: unknown exception";
                return res;
            }
        }
    }
}

BatchReport VerificationDriver::run(const std::vector<JobSpec>& jobs) {
    BatchReport report;
    report.cache_enabled = opts_.use_cache;
    report.timeout_ms = opts_.timeout_ms;
    report.results.resize(jobs.size());

    size_t workers = opts_.jobs;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers = std::min(workers, jobs.size() ? jobs.size() : size_t{1});
    report.workers = workers;

    solver::EntailCache::Stats cache_before = cache_.stats();
    Clock::time_point start = Clock::now();

    // Pull-based pool with stable result slots: each worker claims the
    // next unclaimed job index and writes into results[i], so aggregation
    // order never depends on scheduling.
    std::atomic<size_t> next{0};
    auto work = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            report.results[i] = run_job(jobs[i]);
        }
    };
    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t t = 0; t < workers; ++t)
            pool.emplace_back(work);
        for (auto& th : pool)
            th.join();
    }

    report.wall_ms = ms_since(start);
    report.cache = cache_.stats().since(cache_before);
    return report;
}

// --- job discovery ---------------------------------------------------------

bool builtin_job(const std::string& name, JobSpec& out) {
    std::string variant = name;
    if (variant.rfind("builtin:", 0) == 0)
        variant = variant.substr(8);
    out = {};
    out.name = "builtin:" + variant;
    if (variant == "labeled")
        out.source = proc::labeled_cpu_source();
    else if (variant == "baseline")
        out.source = proc::baseline_cpu_source();
    else if (variant == "vulnerable")
        out.source = proc::vulnerable_cpu_source();
    else if (variant == "quad")
        out.source = proc::quad_core_source();
    else
        return false;
    return true;
}

std::vector<JobSpec> builtin_cpu_jobs() {
    std::vector<JobSpec> jobs(4);
    builtin_job("labeled", jobs[0]);
    builtin_job("baseline", jobs[1]);
    builtin_job("vulnerable", jobs[2]);
    builtin_job("quad", jobs[3]);
    return jobs;
}

} // namespace svlc::driver
