// Batch report rendering: JSON (for CI dashboards / the bench harness)
// and a deterministic human-readable summary.
#include "driver/driver.hpp"

#include "support/json.hpp"

#include <cstdio>

namespace svlc::driver {

size_t BatchReport::count(JobStatus s) const {
    size_t n = 0;
    for (const auto& r : results)
        n += r.status == s;
    return n;
}

bool BatchReport::all_ran() const {
    for (const auto& r : results)
        if (r.status == JobStatus::Error || r.status == JobStatus::Timeout)
            return false;
    return true;
}

size_t BatchReport::skipped_count() const {
    size_t n = 0;
    for (const auto& r : results)
        n += r.skipped;
    return n;
}

solver::EntailmentEngine::Stats BatchReport::solver_totals() const {
    solver::EntailmentEngine::Stats t;
    for (const auto& r : results) {
        t.queries += r.solver.queries;
        t.syntactic_hits += r.solver.syntactic_hits;
        t.enumerations += r.solver.enumerations;
        t.total_candidates += r.solver.total_candidates;
        t.cache_hits += r.solver.cache_hits;
        t.cache_misses += r.solver.cache_misses;
        t.conflicts += r.solver.conflicts;
        t.propagations += r.solver.propagations;
        t.learned_clauses += r.solver.learned_clauses;
        t.restarts += r.solver.restarts;
    }
    return t;
}

namespace {

void put_solver_stats(JsonWriter& w,
                      const solver::EntailmentEngine::Stats& s) {
    w.begin_object();
    w.kv("queries", s.queries);
    w.kv("syntactic_hits", s.syntactic_hits);
    // Per-job attribution: these come from the job's own engine, so a
    // design's cache efficacy is visible even though the cache itself is
    // shared batch-wide.
    w.kv("cache_hits", s.cache_hits);
    w.kv("cache_misses", s.cache_misses);
    w.kv("enumerations", s.enumerations);
    w.kv("candidates", s.total_candidates);
    // CDCL search telemetry; identically zero for the enum and prune
    // backends, which enumerate instead of deciding/propagating.
    w.kv("conflicts", s.conflicts);
    w.kv("propagations", s.propagations);
    w.kv("learned_clauses", s.learned_clauses);
    w.kv("restarts", s.restarts);
    w.end_object();
}

} // namespace

std::string BatchReport::to_json(bool full) const {
    // `full` adds timings and solver/cache telemetry. Those are
    // scheduling-dependent: two workers can race to decide the same
    // memoized query, shifting a count from cache_hits to enumerations.
    // With `full` off, every emitted field is a verification verdict —
    // invariant across worker counts, cache population order, and runs.
    JsonWriter w;
    w.begin_object();
    w.kv("schema", "svlc-batch-report/v2");

    if (full) {
        w.key("config").begin_object();
        w.kv("workers", workers);
        w.kv("timeout_ms", timeout_ms);
        w.kv("cache", cache_enabled);
        w.kv("solver", solver_backend);
        w.end_object();
    }

    w.key("jobs").begin_array();
    for (const auto& r : results) {
        w.begin_object();
        w.kv("name", r.name);
        w.kv("status", job_status_name(r.status));
        w.kv("obligations", r.obligations);
        w.kv("failed", r.failed);
        w.kv("downgrades", r.downgrades);
        w.kv("diagnostics", r.diagnostics);
        if (!r.flagged.empty()) {
            // Non-proven obligations with stable ids and witnesses. Part
            // of the stable subset: the records replay losslessly from
            // the store, so warm and cold runs still agree byte-for-byte
            // (solve_ms is run-dependent and only emitted with `full`).
            w.key("flagged").begin_array();
            for (const auto& rec : r.flagged)
                pipeline::write_obligation_record(w, rec, full);
            w.end_array();
        }
        if (full) {
            // Skip provenance and telemetry are store/scheduling state,
            // not verdicts, so they stay out of the stable subset —
            // warm (all-skipped) and cold runs must agree byte-for-byte
            // on to_json(false).
            if (r.skipped)
                w.kv("skipped", "fingerprint-hit");
            if (!r.fingerprint.empty())
                w.kv("fingerprint", r.fingerprint);
            w.kv("attempts", r.attempts);
            w.kv("obligations_replayed", r.obligations_replayed);
            w.kv("obligations_solved", r.obligations_solved);
            w.key("solver");
            put_solver_stats(w, r.solver);
            w.kv("wall_ms", r.wall_ms, 3);
            w.kv("cpu_ms", r.cpu_ms, 3);
        }
        w.end_object();
    }
    w.end_array();

    w.key("totals").begin_object();
    w.kv("jobs", results.size());
    w.kv("secure", count(JobStatus::Secure));
    w.kv("rejected", count(JobStatus::Rejected));
    w.kv("error", count(JobStatus::Error));
    w.kv("timeout", count(JobStatus::Timeout));
    if (full) {
        w.kv("skipped", skipped_count());
        size_t replayed = 0, solved = 0;
        for (const auto& r : results) {
            replayed += r.obligations_replayed;
            solved += r.obligations_solved;
        }
        w.kv("obligations_replayed", replayed);
        w.kv("obligations_solved", solved);
        w.key("solver");
        put_solver_stats(w, solver_totals());
    }
    w.end_object();

    if (full) {
        w.key("cache").begin_object();
        w.kv("enabled", cache_enabled);
        w.kv("hits", cache.hits);
        w.kv("misses", cache.misses);
        w.kv("inserts", cache.inserts);
        w.kv("evictions", cache.evictions);
        w.kv("entries", cache.entries);
        w.kv("hit_rate", cache.hit_rate(), 4);
        w.end_object();
        w.key("store").begin_object();
        w.kv("enabled", store_enabled);
        w.kv("hits", store.verdict_hits);
        w.kv("misses", store.verdict_misses);
        w.kv("stores", store.verdict_stores);
        w.kv("obligation_hits", store.obligation_hits);
        w.kv("obligation_misses", store.obligation_misses);
        w.kv("obligation_stores", store.obligation_stores);
        w.kv("entail_loaded", store.entail_loaded);
        w.kv("entail_flushed", store.entail_flushed);
        w.kv("entail_evicted", store.entail_evicted);
        w.kv("corrupt_discarded", store.corrupt_discarded);
        w.kv("legacy_discarded", store.legacy_discarded);
        w.end_object();
        w.kv("wall_ms", wall_ms, 3);
    }
    w.end_object();
    std::string out = w.str();
    out += '\n';
    return out;
}

std::string BatchReport::summary() const {
    std::string out;
    char buf[256];
    for (const auto& r : results) {
        std::snprintf(buf, sizeof buf,
                      "%-10s %s: %zu obligations, %zu failed, %zu "
                      "downgrade site(s)\n",
                      job_status_name(r.status), r.name.c_str(),
                      r.obligations, r.failed, r.downgrades);
        out += buf;
    }
    auto totals = solver_totals();
    std::snprintf(buf, sizeof buf,
                  "batch: %zu job(s) — %zu secure, %zu rejected, %zu "
                  "error, %zu timeout\n",
                  results.size(), count(JobStatus::Secure),
                  count(JobStatus::Rejected), count(JobStatus::Error),
                  count(JobStatus::Timeout));
    out += buf;
    // Only worker-count-invariant counters here; cached/enumerated splits
    // race under concurrency and are reported via stderr and full JSON.
    std::snprintf(buf, sizeof buf, "solver: %llu queries, %llu syntactic\n",
                  static_cast<unsigned long long>(totals.queries),
                  static_cast<unsigned long long>(totals.syntactic_hits));
    out += buf;
    return out;
}

} // namespace svlc::driver
