// Backend differential harness: the self-check behind the pluggable
// solver. Every entailment backend must produce verification verdicts
// identical to the enum reference on every design — status,
// per-obligation records, witnesses, everything in the stable report
// subset. `svlc diff-backends` and CI run this three-way (enum vs prune
// vs cdcl) over the whole corpus; any diff fails the build.
#include "driver/driver.hpp"

#include <string>

namespace svlc::driver {

namespace {

std::string witness_str(const pipeline::ObligationRecord& rec) {
    std::string out;
    for (const auto& b : rec.witness) {
        out += b.net;
        if (b.primed)
            out += '\'';
        out += '=';
        out += std::to_string(b.value);
        out += ' ';
    }
    return out;
}

void diff_job(const JobResult& e, const JobResult& o,
              const std::string& backend, std::vector<BackendDiff>& out) {
    auto add = [&](const std::string& field, std::string ev, std::string ov) {
        out.push_back({e.name, field, backend, std::move(ev), std::move(ov)});
    };
    if (e.status != o.status) {
        add("status", job_status_name(e.status), job_status_name(o.status));
        return; // per-obligation comparison is meaningless across statuses
    }
    if (e.obligations != o.obligations)
        add("obligations", std::to_string(e.obligations),
            std::to_string(o.obligations));
    if (e.failed != o.failed)
        add("failed", std::to_string(e.failed), std::to_string(o.failed));
    if (e.flagged.size() != o.flagged.size()) {
        add("flagged", std::to_string(e.flagged.size()),
            std::to_string(o.flagged.size()));
        return;
    }
    for (size_t i = 0; i < e.flagged.size(); ++i) {
        const auto& er = e.flagged[i];
        const auto& orr = o.flagged[i];
        if (er.id != orr.id) {
            add("flagged[" + std::to_string(i) + "].id", er.id, orr.id);
            continue;
        }
        if (er.status != orr.status)
            add(er.id, er.status, orr.status);
        if (er.detail != orr.detail)
            add(er.id + ".detail", er.detail, orr.detail);
        std::string ew = witness_str(er), ow = witness_str(orr);
        if (ew != ow)
            add(er.id + ".witness", ew, ow);
    }
}

} // namespace

std::vector<BackendDiff> diff_backends(const std::vector<JobSpec>& jobs,
                                       const DriverOptions& base) {
    DriverOptions opts = base;
    opts.store_dir.clear(); // never replay one backend's run as another's

    opts.check.solver.backend = solver::BackendKind::Enum;
    VerificationDriver enum_driver(opts);
    BatchReport enum_report = enum_driver.run(jobs);

    std::vector<BackendDiff> diffs;
    for (solver::BackendKind kind :
         {solver::BackendKind::Prune, solver::BackendKind::Cdcl}) {
        opts.check.solver.backend = kind;
        VerificationDriver other_driver(opts);
        BatchReport other_report = other_driver.run(jobs);
        const std::string backend = solver::backend_id(kind);
        for (size_t i = 0; i < jobs.size(); ++i)
            diff_job(enum_report.results[i], other_report.results[i], backend,
                     diffs);
    }
    return diffs;
}

} // namespace svlc::driver
