// Backend differential harness: the self-check behind the pluggable
// solver. Both entailment backends must produce identical verification
// verdicts on every design — status, per-obligation records, witnesses,
// everything in the stable report subset. `svlc diff-backends` and CI run
// this over the whole corpus; any diff fails the build.
#include "driver/driver.hpp"

#include <string>

namespace svlc::driver {

namespace {

std::string witness_str(const pipeline::ObligationRecord& rec) {
    std::string out;
    for (const auto& b : rec.witness) {
        out += b.net;
        if (b.primed)
            out += '\'';
        out += '=';
        out += std::to_string(b.value);
        out += ' ';
    }
    return out;
}

void diff_job(const JobResult& e, const JobResult& p,
              std::vector<BackendDiff>& out) {
    auto add = [&](const std::string& field, std::string ev, std::string pv) {
        out.push_back({e.name, field, std::move(ev), std::move(pv)});
    };
    if (e.status != p.status) {
        add("status", job_status_name(e.status), job_status_name(p.status));
        return; // per-obligation comparison is meaningless across statuses
    }
    if (e.obligations != p.obligations)
        add("obligations", std::to_string(e.obligations),
            std::to_string(p.obligations));
    if (e.failed != p.failed)
        add("failed", std::to_string(e.failed), std::to_string(p.failed));
    if (e.flagged.size() != p.flagged.size()) {
        add("flagged", std::to_string(e.flagged.size()),
            std::to_string(p.flagged.size()));
        return;
    }
    for (size_t i = 0; i < e.flagged.size(); ++i) {
        const auto& er = e.flagged[i];
        const auto& pr = p.flagged[i];
        if (er.id != pr.id) {
            add("flagged[" + std::to_string(i) + "].id", er.id, pr.id);
            continue;
        }
        if (er.status != pr.status)
            add(er.id, er.status, pr.status);
        if (er.detail != pr.detail)
            add(er.id + ".detail", er.detail, pr.detail);
        std::string ew = witness_str(er), pw = witness_str(pr);
        if (ew != pw)
            add(er.id + ".witness", ew, pw);
    }
}

} // namespace

std::vector<BackendDiff> diff_backends(const std::vector<JobSpec>& jobs,
                                       const DriverOptions& base) {
    DriverOptions opts = base;
    opts.store_dir.clear(); // never replay one backend's run as the other's

    opts.check.solver.backend = solver::BackendKind::Enum;
    VerificationDriver enum_driver(opts);
    BatchReport enum_report = enum_driver.run(jobs);

    opts.check.solver.backend = solver::BackendKind::Prune;
    VerificationDriver prune_driver(opts);
    BatchReport prune_report = prune_driver.run(jobs);

    std::vector<BackendDiff> diffs;
    for (size_t i = 0; i < jobs.size(); ++i)
        diff_job(enum_report.results[i], prune_report.results[i], diffs);
    return diffs;
}

} // namespace svlc::driver
