file(REMOVE_RECURSE
  "CMakeFiles/svlc_lattice.dir/label_function.cpp.o"
  "CMakeFiles/svlc_lattice.dir/label_function.cpp.o.d"
  "CMakeFiles/svlc_lattice.dir/lattice.cpp.o"
  "CMakeFiles/svlc_lattice.dir/lattice.cpp.o.d"
  "libsvlc_lattice.a"
  "libsvlc_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
