# Empty compiler generated dependencies file for svlc_lattice.
# This may be replaced when dependencies are built.
