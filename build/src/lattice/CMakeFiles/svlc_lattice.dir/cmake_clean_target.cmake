file(REMOVE_RECURSE
  "libsvlc_lattice.a"
)
