
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/label_function.cpp" "src/lattice/CMakeFiles/svlc_lattice.dir/label_function.cpp.o" "gcc" "src/lattice/CMakeFiles/svlc_lattice.dir/label_function.cpp.o.d"
  "/root/repo/src/lattice/lattice.cpp" "src/lattice/CMakeFiles/svlc_lattice.dir/lattice.cpp.o" "gcc" "src/lattice/CMakeFiles/svlc_lattice.dir/lattice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/svlc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
