# Empty dependencies file for svlc_xform.
# This may be replaced when dependencies are built.
