file(REMOVE_RECURSE
  "CMakeFiles/svlc_xform.dir/clearing.cpp.o"
  "CMakeFiles/svlc_xform.dir/clearing.cpp.o.d"
  "CMakeFiles/svlc_xform.dir/simplify.cpp.o"
  "CMakeFiles/svlc_xform.dir/simplify.cpp.o.d"
  "libsvlc_xform.a"
  "libsvlc_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
