file(REMOVE_RECURSE
  "libsvlc_xform.a"
)
