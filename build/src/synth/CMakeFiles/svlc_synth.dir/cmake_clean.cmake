file(REMOVE_RECURSE
  "CMakeFiles/svlc_synth.dir/synthesize.cpp.o"
  "CMakeFiles/svlc_synth.dir/synthesize.cpp.o.d"
  "libsvlc_synth.a"
  "libsvlc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
