# Empty compiler generated dependencies file for svlc_synth.
# This may be replaced when dependencies are built.
