file(REMOVE_RECURSE
  "libsvlc_synth.a"
)
