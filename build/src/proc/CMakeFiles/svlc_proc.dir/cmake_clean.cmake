file(REMOVE_RECURSE
  "CMakeFiles/svlc_proc.dir/assembler.cpp.o"
  "CMakeFiles/svlc_proc.dir/assembler.cpp.o.d"
  "CMakeFiles/svlc_proc.dir/golden.cpp.o"
  "CMakeFiles/svlc_proc.dir/golden.cpp.o.d"
  "CMakeFiles/svlc_proc.dir/isa.cpp.o"
  "CMakeFiles/svlc_proc.dir/isa.cpp.o.d"
  "CMakeFiles/svlc_proc.dir/sources.cpp.o"
  "CMakeFiles/svlc_proc.dir/sources.cpp.o.d"
  "CMakeFiles/svlc_proc.dir/testbench.cpp.o"
  "CMakeFiles/svlc_proc.dir/testbench.cpp.o.d"
  "CMakeFiles/svlc_proc.dir/testvectors.cpp.o"
  "CMakeFiles/svlc_proc.dir/testvectors.cpp.o.d"
  "libsvlc_proc.a"
  "libsvlc_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
