file(REMOVE_RECURSE
  "libsvlc_proc.a"
)
