# Empty compiler generated dependencies file for svlc_proc.
# This may be replaced when dependencies are built.
