
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proc/assembler.cpp" "src/proc/CMakeFiles/svlc_proc.dir/assembler.cpp.o" "gcc" "src/proc/CMakeFiles/svlc_proc.dir/assembler.cpp.o.d"
  "/root/repo/src/proc/golden.cpp" "src/proc/CMakeFiles/svlc_proc.dir/golden.cpp.o" "gcc" "src/proc/CMakeFiles/svlc_proc.dir/golden.cpp.o.d"
  "/root/repo/src/proc/isa.cpp" "src/proc/CMakeFiles/svlc_proc.dir/isa.cpp.o" "gcc" "src/proc/CMakeFiles/svlc_proc.dir/isa.cpp.o.d"
  "/root/repo/src/proc/sources.cpp" "src/proc/CMakeFiles/svlc_proc.dir/sources.cpp.o" "gcc" "src/proc/CMakeFiles/svlc_proc.dir/sources.cpp.o.d"
  "/root/repo/src/proc/testbench.cpp" "src/proc/CMakeFiles/svlc_proc.dir/testbench.cpp.o" "gcc" "src/proc/CMakeFiles/svlc_proc.dir/testbench.cpp.o.d"
  "/root/repo/src/proc/testvectors.cpp" "src/proc/CMakeFiles/svlc_proc.dir/testvectors.cpp.o" "gcc" "src/proc/CMakeFiles/svlc_proc.dir/testvectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parse/CMakeFiles/svlc_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/svlc_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svlc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/svlc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/svlc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/svlc_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
