file(REMOVE_RECURSE
  "libsvlc_solver.a"
)
