# Empty compiler generated dependencies file for svlc_solver.
# This may be replaced when dependencies are built.
