file(REMOVE_RECURSE
  "CMakeFiles/svlc_solver.dir/entail.cpp.o"
  "CMakeFiles/svlc_solver.dir/entail.cpp.o.d"
  "CMakeFiles/svlc_solver.dir/eval3.cpp.o"
  "CMakeFiles/svlc_solver.dir/eval3.cpp.o.d"
  "CMakeFiles/svlc_solver.dir/label.cpp.o"
  "CMakeFiles/svlc_solver.dir/label.cpp.o.d"
  "libsvlc_solver.a"
  "libsvlc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
