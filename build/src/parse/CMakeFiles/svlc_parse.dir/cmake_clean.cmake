file(REMOVE_RECURSE
  "CMakeFiles/svlc_parse.dir/lexer.cpp.o"
  "CMakeFiles/svlc_parse.dir/lexer.cpp.o.d"
  "CMakeFiles/svlc_parse.dir/parser.cpp.o"
  "CMakeFiles/svlc_parse.dir/parser.cpp.o.d"
  "libsvlc_parse.a"
  "libsvlc_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
