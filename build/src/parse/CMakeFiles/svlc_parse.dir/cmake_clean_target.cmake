file(REMOVE_RECURSE
  "libsvlc_parse.a"
)
