# Empty dependencies file for svlc_parse.
# This may be replaced when dependencies are built.
