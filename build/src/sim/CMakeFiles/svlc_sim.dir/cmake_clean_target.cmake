file(REMOVE_RECURSE
  "libsvlc_sim.a"
)
