file(REMOVE_RECURSE
  "CMakeFiles/svlc_sim.dir/simulator.cpp.o"
  "CMakeFiles/svlc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/svlc_sim.dir/vcd.cpp.o"
  "CMakeFiles/svlc_sim.dir/vcd.cpp.o.d"
  "libsvlc_sim.a"
  "libsvlc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
