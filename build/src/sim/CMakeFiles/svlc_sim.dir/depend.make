# Empty dependencies file for svlc_sim.
# This may be replaced when dependencies are built.
