file(REMOVE_RECURSE
  "libsvlc_support.a"
)
