file(REMOVE_RECURSE
  "CMakeFiles/svlc_support.dir/bitvec.cpp.o"
  "CMakeFiles/svlc_support.dir/bitvec.cpp.o.d"
  "CMakeFiles/svlc_support.dir/diagnostics.cpp.o"
  "CMakeFiles/svlc_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/svlc_support.dir/source_manager.cpp.o"
  "CMakeFiles/svlc_support.dir/source_manager.cpp.o.d"
  "libsvlc_support.a"
  "libsvlc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
