# Empty dependencies file for svlc_support.
# This may be replaced when dependencies are built.
