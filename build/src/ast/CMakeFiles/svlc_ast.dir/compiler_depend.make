# Empty compiler generated dependencies file for svlc_ast.
# This may be replaced when dependencies are built.
