file(REMOVE_RECURSE
  "libsvlc_ast.a"
)
