file(REMOVE_RECURSE
  "CMakeFiles/svlc_ast.dir/ast.cpp.o"
  "CMakeFiles/svlc_ast.dir/ast.cpp.o.d"
  "CMakeFiles/svlc_ast.dir/printer.cpp.o"
  "CMakeFiles/svlc_ast.dir/printer.cpp.o.d"
  "libsvlc_ast.a"
  "libsvlc_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
