# Empty compiler generated dependencies file for svlc_sem.
# This may be replaced when dependencies are built.
