file(REMOVE_RECURSE
  "CMakeFiles/svlc_sem.dir/elaborate.cpp.o"
  "CMakeFiles/svlc_sem.dir/elaborate.cpp.o.d"
  "CMakeFiles/svlc_sem.dir/hir.cpp.o"
  "CMakeFiles/svlc_sem.dir/hir.cpp.o.d"
  "CMakeFiles/svlc_sem.dir/updates.cpp.o"
  "CMakeFiles/svlc_sem.dir/updates.cpp.o.d"
  "CMakeFiles/svlc_sem.dir/wellformed.cpp.o"
  "CMakeFiles/svlc_sem.dir/wellformed.cpp.o.d"
  "libsvlc_sem.a"
  "libsvlc_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
