file(REMOVE_RECURSE
  "libsvlc_sem.a"
)
