# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lattice")
subdirs("ast")
subdirs("parse")
subdirs("sem")
subdirs("solver")
subdirs("check")
subdirs("xform")
subdirs("sim")
subdirs("verify")
subdirs("codegen")
subdirs("synth")
subdirs("proc")
