
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/verilog.cpp" "src/codegen/CMakeFiles/svlc_codegen.dir/verilog.cpp.o" "gcc" "src/codegen/CMakeFiles/svlc_codegen.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/svlc_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/svlc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/svlc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/svlc_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
