# Empty dependencies file for svlc_codegen.
# This may be replaced when dependencies are built.
