file(REMOVE_RECURSE
  "CMakeFiles/svlc_codegen.dir/verilog.cpp.o"
  "CMakeFiles/svlc_codegen.dir/verilog.cpp.o.d"
  "libsvlc_codegen.a"
  "libsvlc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
