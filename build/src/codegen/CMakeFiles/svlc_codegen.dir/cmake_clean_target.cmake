file(REMOVE_RECURSE
  "libsvlc_codegen.a"
)
