file(REMOVE_RECURSE
  "CMakeFiles/svlc_check.dir/typecheck.cpp.o"
  "CMakeFiles/svlc_check.dir/typecheck.cpp.o.d"
  "libsvlc_check.a"
  "libsvlc_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
