file(REMOVE_RECURSE
  "libsvlc_check.a"
)
