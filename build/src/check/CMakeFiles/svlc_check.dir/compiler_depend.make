# Empty compiler generated dependencies file for svlc_check.
# This may be replaced when dependencies are built.
