file(REMOVE_RECURSE
  "libsvlc_verify.a"
)
