
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/noninterference.cpp" "src/verify/CMakeFiles/svlc_verify.dir/noninterference.cpp.o" "gcc" "src/verify/CMakeFiles/svlc_verify.dir/noninterference.cpp.o.d"
  "/root/repo/src/verify/taint.cpp" "src/verify/CMakeFiles/svlc_verify.dir/taint.cpp.o" "gcc" "src/verify/CMakeFiles/svlc_verify.dir/taint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/svlc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/svlc_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/svlc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/svlc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/svlc_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
