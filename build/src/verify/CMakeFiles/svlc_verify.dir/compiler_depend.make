# Empty compiler generated dependencies file for svlc_verify.
# This may be replaced when dependencies are built.
