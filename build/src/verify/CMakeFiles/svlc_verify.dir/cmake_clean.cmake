file(REMOVE_RECURSE
  "CMakeFiles/svlc_verify.dir/noninterference.cpp.o"
  "CMakeFiles/svlc_verify.dir/noninterference.cpp.o.d"
  "CMakeFiles/svlc_verify.dir/taint.cpp.o"
  "CMakeFiles/svlc_verify.dir/taint.cpp.o.d"
  "libsvlc_verify.a"
  "libsvlc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
