file(REMOVE_RECURSE
  "CMakeFiles/bench_typecheck.dir/bench_typecheck.cpp.o"
  "CMakeFiles/bench_typecheck.dir/bench_typecheck.cpp.o.d"
  "bench_typecheck"
  "bench_typecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
