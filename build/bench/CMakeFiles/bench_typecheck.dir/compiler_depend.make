# Empty compiler generated dependencies file for bench_typecheck.
# This may be replaced when dependencies are built.
