# Empty compiler generated dependencies file for bench_testvectors.
# This may be replaced when dependencies are built.
