file(REMOVE_RECURSE
  "CMakeFiles/bench_testvectors.dir/bench_testvectors.cpp.o"
  "CMakeFiles/bench_testvectors.dir/bench_testvectors.cpp.o.d"
  "bench_testvectors"
  "bench_testvectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testvectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
