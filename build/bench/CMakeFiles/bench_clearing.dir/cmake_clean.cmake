file(REMOVE_RECURSE
  "CMakeFiles/bench_clearing.dir/bench_clearing.cpp.o"
  "CMakeFiles/bench_clearing.dir/bench_clearing.cpp.o.d"
  "bench_clearing"
  "bench_clearing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clearing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
