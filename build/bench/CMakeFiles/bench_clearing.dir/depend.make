# Empty dependencies file for bench_clearing.
# This may be replaced when dependencies are built.
