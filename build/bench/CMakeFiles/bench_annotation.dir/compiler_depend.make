# Empty compiler generated dependencies file for bench_annotation.
# This may be replaced when dependencies are built.
