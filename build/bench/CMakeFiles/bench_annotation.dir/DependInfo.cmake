
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_annotation.cpp" "bench/CMakeFiles/bench_annotation.dir/bench_annotation.cpp.o" "gcc" "bench/CMakeFiles/bench_annotation.dir/bench_annotation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/check/CMakeFiles/svlc_check.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/svlc_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/svlc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/svlc_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/svlc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/svlc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/svlc_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/svlc_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svlc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/svlc_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/svlc_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/svlc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/svlc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
