file(REMOVE_RECURSE
  "CMakeFiles/bench_annotation.dir/bench_annotation.cpp.o"
  "CMakeFiles/bench_annotation.dir/bench_annotation.cpp.o.d"
  "bench_annotation"
  "bench_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
