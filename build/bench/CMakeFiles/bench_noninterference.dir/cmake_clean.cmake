file(REMOVE_RECURSE
  "CMakeFiles/bench_noninterference.dir/bench_noninterference.cpp.o"
  "CMakeFiles/bench_noninterference.dir/bench_noninterference.cpp.o.d"
  "bench_noninterference"
  "bench_noninterference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noninterference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
