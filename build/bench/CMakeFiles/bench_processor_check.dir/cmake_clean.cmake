file(REMOVE_RECURSE
  "CMakeFiles/bench_processor_check.dir/bench_processor_check.cpp.o"
  "CMakeFiles/bench_processor_check.dir/bench_processor_check.cpp.o.d"
  "bench_processor_check"
  "bench_processor_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_processor_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
