# Empty compiler generated dependencies file for bench_processor_check.
# This may be replaced when dependencies are built.
