file(REMOVE_RECURSE
  "CMakeFiles/ring_demo.dir/ring_demo.cpp.o"
  "CMakeFiles/ring_demo.dir/ring_demo.cpp.o.d"
  "ring_demo"
  "ring_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
