# Empty dependencies file for ring_demo.
# This may be replaced when dependencies are built.
