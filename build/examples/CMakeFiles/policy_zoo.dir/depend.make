# Empty dependencies file for policy_zoo.
# This may be replaced when dependencies are built.
