file(REMOVE_RECURSE
  "CMakeFiles/policy_zoo.dir/policy_zoo.cpp.o"
  "CMakeFiles/policy_zoo.dir/policy_zoo.cpp.o.d"
  "policy_zoo"
  "policy_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
