file(REMOVE_RECURSE
  "CMakeFiles/mode_switch.dir/mode_switch.cpp.o"
  "CMakeFiles/mode_switch.dir/mode_switch.cpp.o.d"
  "mode_switch"
  "mode_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
