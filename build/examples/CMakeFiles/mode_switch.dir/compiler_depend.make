# Empty compiler generated dependencies file for mode_switch.
# This may be replaced when dependencies are built.
