# Empty compiler generated dependencies file for svlc_cli.
# This may be replaced when dependencies are built.
