file(REMOVE_RECURSE
  "CMakeFiles/svlc_cli.dir/svlc_main.cpp.o"
  "CMakeFiles/svlc_cli.dir/svlc_main.cpp.o.d"
  "svlc"
  "svlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svlc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
