# Empty dependencies file for svlc_tests.
# This may be replaced when dependencies are built.
