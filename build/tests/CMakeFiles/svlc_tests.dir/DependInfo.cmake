
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assume_test.cpp" "tests/CMakeFiles/svlc_tests.dir/assume_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/assume_test.cpp.o.d"
  "/root/repo/tests/bitvec_test.cpp" "tests/CMakeFiles/svlc_tests.dir/bitvec_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/bitvec_test.cpp.o.d"
  "/root/repo/tests/check_figures_test.cpp" "tests/CMakeFiles/svlc_tests.dir/check_figures_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/check_figures_test.cpp.o.d"
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/svlc_tests.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/codegen_test.cpp.o.d"
  "/root/repo/tests/elaborate_test.cpp" "tests/CMakeFiles/svlc_tests.dir/elaborate_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/elaborate_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/svlc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lattice_test.cpp" "tests/CMakeFiles/svlc_tests.dir/lattice_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/lattice_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/svlc_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/proc_isa_test.cpp" "tests/CMakeFiles/svlc_tests.dir/proc_isa_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/proc_isa_test.cpp.o.d"
  "/root/repo/tests/proc_pipeline_test.cpp" "tests/CMakeFiles/svlc_tests.dir/proc_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/proc_pipeline_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/svlc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/svlc_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/svlc_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/simplify_test.cpp" "tests/CMakeFiles/svlc_tests.dir/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/simplify_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/svlc_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/soundness_test.cpp" "tests/CMakeFiles/svlc_tests.dir/soundness_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/soundness_test.cpp.o.d"
  "/root/repo/tests/synth_test.cpp" "tests/CMakeFiles/svlc_tests.dir/synth_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/synth_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/svlc_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/svlc_tests.dir/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/check/CMakeFiles/svlc_check.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/svlc_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/svlc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/svlc_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/svlc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/svlc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/svlc_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/svlc_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svlc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/svlc_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/svlc_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/svlc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/svlc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
