// svlc — the SecVerilogLC command-line driver.
//
//   svlc check <file.svlc> [--top M] [--classic] [--no-hold]
//              [--solver enum|prune|cdcl] [--json out.json] [--stats]
//              [--remote SOCKET] [--store DIR]
//   svlc serve --socket PATH [--store DIR] [--max-sessions N]
//              [--idle-timeout SEC] [--timeout-ms T]
//              [--classic] [--no-hold] [--solver enum|prune|cdcl]
//   svlc client --socket PATH [--retry N] [--backoff MS]
//              <method> [params-json]
//   svlc coordinator --socket PATH <manifest|dir|file.svlc|builtin:V>
//              [--cpus] [--store DIR] [--json F] [--timeout-ms T]
//              [--lease-ms T] [--backoff-ms T] [--classic] [--no-hold]
//              [--solver enum|prune|cdcl]
//   svlc worker --connect PATH [--store DIR] [--name S] [--retry N]
//              [--backoff MS]
//   svlc emit-verilog <file.svlc> [--top M] [--compat]
//   svlc sim <file.svlc> [--top M] --cycles N [--set in=val]...
//            [--vcd out.vcd] [--watch net]...
//   svlc synth <file.svlc> [--top M] [--no-enable-ff] [--clock NS]
//   svlc taint <file.svlc> [--top M] --cycles N [--set in=val]...
//   svlc hunt <file.svlc> [--top M] [--depth N] [--observer L]
//            [--beam N] [--branch K] [--seed S] [--no-minimize]
//            [--json out.json]
//   svlc hunt-corpus [--out DIR]
//   svlc dump-cpu <labeled|baseline|vulnerable|quad> [outfile]
//   svlc batch <manifest|dir|file.svlc|builtin:V> [--jobs N] [--json F]
//              [--timeout-ms T] [--no-cache] [--warm] [--cpus]
//              [--store DIR] [--no-store] [--solver enum|prune|cdcl]
//   svlc watch <manifest|dir|file.svlc|builtin:V> [--store DIR]
//              [--interval-ms T] [--iterations N] [--jobs N] [--cpus]
//   svlc diff-backends <manifest|dir|file.svlc|builtin:V> [--jobs N]
//              [--cpus] [--classic] [--no-hold]
//
// Every checking command funnels through pipeline::Compilation — the CLI
// owns flag parsing and rendering, never phase plumbing.
#include "check/typecheck.hpp"
#include "codegen/verilog.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "driver/driver.hpp"
#include "driver/watch.hpp"
#include "fuzz/reducer.hpp"
#include "fuzz/runner.hpp"
#include "hunt/corpus.hpp"
#include "hunt/hunter.hpp"
#include "incr/replay.hpp"
#include "incr/store.hpp"
#include "pipeline/compilation.hpp"
#include "proc/assembler.hpp"
#include "proc/isa.hpp"
#include "proc/sources.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "solver/entail.hpp"
#include "support/diagnostics.hpp"
#include "support/fsutil.hpp"
#include "support/json.hpp"
#include "support/json_reader.hpp"
#include "synth/synthesize.hpp"
#include "verify/taint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace svlc;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  svlc check <file.svlc> [--top M] [--classic] [--no-hold]\n"
                 "             [--solver enum|prune|cdcl] [--json out.json] [--stats]\n"
                 "             [--remote SOCKET] [--store DIR]\n"
                 "  svlc serve --socket PATH [--store DIR] [--max-sessions N]\n"
                 "             [--idle-timeout SEC] [--timeout-ms T]\n"
                 "             [--classic] [--no-hold] [--solver enum|prune|cdcl]\n"
                 "  svlc client --socket PATH [--retry N] [--backoff MS]\n"
                 "             <method> [params-json]\n"
                 "  svlc coordinator --socket PATH\n"
                 "             <manifest|dir|file.svlc|builtin:V> [--cpus]\n"
                 "             [--store DIR] [--json out.json] [--timeout-ms T]\n"
                 "             [--lease-ms T] [--backoff-ms T] [--classic]\n"
                 "             [--no-hold] [--solver enum|prune|cdcl]\n"
                 "  svlc worker --connect PATH [--store DIR] [--name S]\n"
                 "             [--retry N] [--backoff MS]\n"
                 "  svlc batch <manifest|dir|file.svlc|builtin:V> [--jobs N]\n"
                 "             [--json out.json] [--timeout-ms T] [--no-cache]\n"
                 "             [--warm] [--cpus] [--classic] [--no-hold]\n"
                 "             [--store DIR] [--no-store] [--solver enum|prune|cdcl]\n"
                 "  svlc watch <manifest|dir|file.svlc|builtin:V> [--store DIR]\n"
                 "             [--interval-ms T] [--iterations N] [--jobs N]\n"
                 "             [--cpus] [--classic] [--no-hold]\n"
                 "             [--solver enum|prune|cdcl]\n"
                 "  svlc diff-backends <manifest|dir|file.svlc|builtin:V>\n"
                 "             [--jobs N] [--cpus] [--classic] [--no-hold]\n"
                 "  svlc emit-verilog <file.svlc> [--top M] [--compat]\n"
                 "  svlc sim <file.svlc> [--top M] --cycles N [--set in=val]...\n"
                 "           [--vcd out.vcd] [--watch net]...\n"
                 "  svlc synth <file.svlc> [--top M] [--no-enable-ff] [--clock NS]\n"
                 "  svlc taint <file.svlc> [--top M] --cycles N [--set in=val]...\n"
                 "  svlc hunt <file.svlc> [--top M] [--depth N] [--observer L]\n"
                 "            [--beam N] [--branch K] [--seed S]\n"
                 "            [--no-minimize] [--json out.json]\n"
                 "  svlc hunt-corpus [--out DIR]\n"
                 "  svlc dump-cpu <labeled|baseline|vulnerable|quad> [outfile]\n"
                 "  svlc asm <file.s> [outfile.hex]\n"
                 "  svlc disasm <file.hex>\n"
                 "  svlc fuzz [--seed N] [--count M] [--oracle all|LIST]\n"
                 "            [--corpus DIR] [--no-reduce] [--dump]\n"
                 "  svlc reduce <file.svlc> [--oracle NAME|diag:CODE]\n"
                 "            [--out out.svlc]\n");
    return 2;
}

struct Args {
    std::string command;
    std::string file;
    std::string top;
    bool classic = false;
    bool no_hold = false;
    bool compat = false;
    bool no_enable_ff = false;
    double clock = 2.0;
    uint64_t cycles = 100;
    std::vector<std::pair<std::string, uint64_t>> sets;
    std::vector<std::string> watches;
    std::string vcd_path;
    std::string extra; // dump-cpu variant / outfile
    std::string outfile;
    // check --stats
    bool stats = false;
    // check/batch/watch entailment backend (empty = engine default)
    std::string solver;
    // batch
    uint64_t jobs = 0;
    std::string json_path;
    uint64_t timeout_ms = 0;
    bool no_cache = false;
    bool warm = false;
    bool cpus = false;
    // batch/watch persistent store
    std::string store_dir;
    bool no_store = false;
    // watch
    uint64_t interval_ms = 500;
    uint64_t iterations = 0;
    // check --remote / serve / client / coordinator / worker
    std::string socket_path;
    uint64_t max_sessions = 16;
    uint64_t idle_timeout_sec = 0;
    std::string client_method;
    std::string client_params = "{}";
    // client / worker / check --remote reconnect policy
    uint64_t retry_attempts = 0;
    uint64_t retry_backoff_ms = 100;
    // coordinator
    uint64_t lease_ms = 120000;
    uint64_t coord_backoff_ms = 250;
    // worker
    std::string worker_name;
    // fuzz / reduce
    uint64_t fuzz_seed = 1;
    uint64_t fuzz_count = 100;
    std::string oracle; // fuzz: oracle set; reduce: oracle or diag:CODE
    std::string corpus_dir = "fuzz-corpus";
    bool no_reduce = false;
    bool dump = false;
    // hunt
    uint64_t hunt_depth = 16;
    std::string observer;
    uint64_t hunt_beam = 8;
    uint64_t hunt_branch = 4;
    uint64_t hunt_seed = 0x5eed;
    bool no_minimize = false;
    // hunt-corpus
    std::string corpus_out = "hunt-corpus";
};

bool parse_args(int argc, char** argv, Args& args) {
    if (argc < 2)
        return false;
    args.command = argv[1];
    int i = 2;
    if (args.command == "dump-cpu") {
        if (i < argc)
            args.extra = argv[i++];
        if (i < argc)
            args.outfile = argv[i++];
        return !args.extra.empty();
    }
    if (args.command == "asm" || args.command == "disasm") {
        if (i < argc)
            args.file = argv[i++];
        if (i < argc)
            args.outfile = argv[i++];
        return !args.file.empty();
    }
    if (args.command == "serve") {
        // No positional argument; everything is a flag.
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> const char* {
                return i + 1 < argc ? argv[++i] : nullptr;
            };
            const char* v = nullptr;
            if (arg == "--socket" && (v = next()))
                args.socket_path = v;
            else if (arg == "--store" && (v = next()))
                args.store_dir = v;
            else if (arg == "--max-sessions" && (v = next()))
                args.max_sessions = std::strtoull(v, nullptr, 0);
            else if (arg == "--idle-timeout" && (v = next()))
                args.idle_timeout_sec = std::strtoull(v, nullptr, 0);
            else if (arg == "--timeout-ms" && (v = next()))
                args.timeout_ms = std::strtoull(v, nullptr, 0);
            else if (arg == "--classic")
                args.classic = true;
            else if (arg == "--no-hold")
                args.no_hold = true;
            else if (arg == "--solver" && (v = next())) {
                if (!solver::parse_backend(v)) {
                    std::fprintf(stderr,
                                 "--solver: unknown backend '%s' (expected "
                                 "enum, prune, or cdcl)\n",
                                 v);
                    return false;
                }
                args.solver = v;
            } else {
                std::fprintf(stderr, "serve: unknown option '%s'\n",
                             arg.c_str());
                return false;
            }
        }
        if (args.socket_path.empty()) {
            std::fprintf(stderr, "serve: --socket PATH is required\n");
            return false;
        }
        return true;
    }
    if (args.command == "client") {
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--socket") {
                if (i + 1 >= argc)
                    return false;
                args.socket_path = argv[++i];
            } else if (arg == "--retry") {
                if (i + 1 >= argc)
                    return false;
                args.retry_attempts = std::strtoull(argv[++i], nullptr, 0);
            } else if (arg == "--backoff") {
                if (i + 1 >= argc)
                    return false;
                args.retry_backoff_ms = std::strtoull(argv[++i], nullptr, 0);
            } else if (args.client_method.empty()) {
                args.client_method = arg;
            } else {
                args.client_params = arg;
            }
        }
        if (args.socket_path.empty() || args.client_method.empty()) {
            std::fprintf(stderr,
                         "client: --socket PATH and a method are required\n");
            return false;
        }
        return true;
    }
    if (args.command == "coordinator") {
        // One positional target (anywhere), the rest are flags.
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> const char* {
                return i + 1 < argc ? argv[++i] : nullptr;
            };
            const char* v = nullptr;
            if (arg == "--socket" && (v = next()))
                args.socket_path = v;
            else if (arg == "--store" && (v = next()))
                args.store_dir = v;
            else if (arg == "--json" && (v = next()))
                args.json_path = v;
            else if (arg == "--timeout-ms" && (v = next()))
                args.timeout_ms = std::strtoull(v, nullptr, 0);
            else if (arg == "--lease-ms" && (v = next()))
                args.lease_ms = std::strtoull(v, nullptr, 0);
            else if (arg == "--backoff-ms" && (v = next()))
                args.coord_backoff_ms = std::strtoull(v, nullptr, 0);
            else if (arg == "--cpus")
                args.cpus = true;
            else if (arg == "--classic")
                args.classic = true;
            else if (arg == "--no-hold")
                args.no_hold = true;
            else if (arg == "--solver" && (v = next())) {
                if (!solver::parse_backend(v)) {
                    std::fprintf(stderr,
                                 "--solver: unknown backend '%s' (expected "
                                 "enum, prune, or cdcl)\n",
                                 v);
                    return false;
                }
                args.solver = v;
            } else if (arg.rfind("--", 0) != 0 && args.file.empty()) {
                args.file = arg;
            } else {
                std::fprintf(stderr, "coordinator: unknown option '%s'\n",
                             arg.c_str());
                return false;
            }
        }
        if (args.socket_path.empty()) {
            std::fprintf(stderr, "coordinator: --socket PATH is required\n");
            return false;
        }
        if (args.file.empty() && !args.cpus) {
            std::fprintf(stderr,
                         "coordinator: a target (or --cpus) is required\n");
            return false;
        }
        return true;
    }
    if (args.command == "worker") {
        // No positional argument; everything is a flag.
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> const char* {
                return i + 1 < argc ? argv[++i] : nullptr;
            };
            const char* v = nullptr;
            if (arg == "--connect" && (v = next()))
                args.socket_path = v;
            else if (arg == "--store" && (v = next()))
                args.store_dir = v;
            else if (arg == "--name" && (v = next()))
                args.worker_name = v;
            else if (arg == "--retry" && (v = next()))
                args.retry_attempts = std::strtoull(v, nullptr, 0);
            else if (arg == "--backoff" && (v = next()))
                args.retry_backoff_ms = std::strtoull(v, nullptr, 0);
            else {
                std::fprintf(stderr, "worker: unknown option '%s'\n",
                             arg.c_str());
                return false;
            }
        }
        if (args.socket_path.empty()) {
            std::fprintf(stderr, "worker: --connect PATH is required\n");
            return false;
        }
        return true;
    }
    if (args.command == "fuzz") {
        // No positional argument; everything is a flag.
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> const char* {
                return i + 1 < argc ? argv[++i] : nullptr;
            };
            const char* v = nullptr;
            if (arg == "--seed" && (v = next()))
                args.fuzz_seed = std::strtoull(v, nullptr, 0);
            else if (arg == "--count" && (v = next()))
                args.fuzz_count = std::strtoull(v, nullptr, 0);
            else if (arg == "--oracle" && (v = next()))
                args.oracle = v;
            else if (arg == "--corpus" && (v = next()))
                args.corpus_dir = v;
            else if (arg == "--no-reduce")
                args.no_reduce = true;
            else if (arg == "--dump")
                args.dump = true;
            else {
                std::fprintf(stderr, "fuzz: unknown option '%s'\n",
                             arg.c_str());
                return false;
            }
        }
        return true;
    }
    if (args.command == "hunt-corpus") {
        // No positional argument; everything is a flag.
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--out" && i + 1 < argc) {
                args.corpus_out = argv[++i];
            } else {
                std::fprintf(stderr, "hunt-corpus: unknown option '%s'\n",
                             arg.c_str());
                return false;
            }
        }
        return true;
    }
    if (i >= argc)
        return false;
    args.file = argv[i++];
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--top") {
            const char* v = next();
            if (!v)
                return false;
            args.top = v;
        } else if (arg == "--classic") {
            args.classic = true;
        } else if (arg == "--no-hold") {
            args.no_hold = true;
        } else if (arg == "--compat") {
            args.compat = true;
        } else if (arg == "--no-enable-ff") {
            args.no_enable_ff = true;
        } else if (arg == "--clock") {
            const char* v = next();
            if (!v)
                return false;
            args.clock = std::atof(v);
        } else if (arg == "--cycles") {
            const char* v = next();
            if (!v)
                return false;
            args.cycles = std::strtoull(v, nullptr, 0);
        } else if (arg == "--set") {
            const char* v = next();
            if (!v)
                return false;
            std::string s = v;
            size_t eq = s.find('=');
            if (eq == std::string::npos)
                return false;
            args.sets.emplace_back(s.substr(0, eq),
                                   std::strtoull(s.c_str() + eq + 1, nullptr,
                                                 0));
        } else if (arg == "--watch") {
            const char* v = next();
            if (!v)
                return false;
            args.watches.push_back(v);
        } else if (arg == "--vcd") {
            const char* v = next();
            if (!v)
                return false;
            args.vcd_path = v;
        } else if (arg == "--stats") {
            args.stats = true;
        } else if (arg == "--remote") {
            const char* v = next();
            if (!v)
                return false;
            args.socket_path = v;
        } else if (arg == "--retry") {
            const char* v = next();
            if (!v)
                return false;
            args.retry_attempts = std::strtoull(v, nullptr, 0);
        } else if (arg == "--backoff") {
            const char* v = next();
            if (!v)
                return false;
            args.retry_backoff_ms = std::strtoull(v, nullptr, 0);
        } else if (arg == "--solver") {
            const char* v = next();
            if (!v)
                return false;
            if (!solver::parse_backend(v)) {
                std::fprintf(stderr,
                             "--solver: unknown backend '%s' (expected "
                             "enum, prune, or cdcl)\n",
                             v);
                return false;
            }
            args.solver = v;
        } else if (arg == "--jobs") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.jobs = std::strtoull(v, &end, 0);
            if (!*v || *end) {
                std::fprintf(stderr, "--jobs: bad count '%s'\n", v);
                return false;
            }
        } else if (arg == "--json") {
            const char* v = next();
            if (!v)
                return false;
            args.json_path = v;
        } else if (arg == "--timeout-ms") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.timeout_ms = std::strtoull(v, &end, 0);
            if (!*v || *end) {
                std::fprintf(stderr, "--timeout-ms: bad value '%s'\n", v);
                return false;
            }
        } else if (arg == "--no-cache") {
            args.no_cache = true;
        } else if (arg == "--store") {
            const char* v = next();
            if (!v)
                return false;
            args.store_dir = v;
        } else if (arg == "--no-store") {
            args.no_store = true;
        } else if (arg == "--interval-ms") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.interval_ms = std::strtoull(v, &end, 0);
            if (!*v || *end) {
                std::fprintf(stderr, "--interval-ms: bad value '%s'\n", v);
                return false;
            }
        } else if (arg == "--iterations") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.iterations = std::strtoull(v, &end, 0);
            if (!*v || *end) {
                std::fprintf(stderr, "--iterations: bad count '%s'\n", v);
                return false;
            }
        } else if (arg == "--warm") {
            args.warm = true;
        } else if (arg == "--cpus") {
            args.cpus = true;
        } else if (arg == "--oracle") {
            const char* v = next();
            if (!v)
                return false;
            args.oracle = v;
        } else if (arg == "--depth") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.hunt_depth = std::strtoull(v, &end, 0);
            if (!*v || *end || args.hunt_depth == 0) {
                std::fprintf(stderr, "--depth: bad cycle count '%s'\n", v);
                return false;
            }
        } else if (arg == "--observer") {
            const char* v = next();
            if (!v)
                return false;
            args.observer = v;
        } else if (arg == "--beam") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.hunt_beam = std::strtoull(v, &end, 0);
            if (!*v || *end || args.hunt_beam == 0) {
                std::fprintf(stderr, "--beam: bad width '%s'\n", v);
                return false;
            }
        } else if (arg == "--branch") {
            const char* v = next();
            if (!v)
                return false;
            char* end = nullptr;
            args.hunt_branch = std::strtoull(v, &end, 0);
            if (!*v || *end || args.hunt_branch == 0) {
                std::fprintf(stderr, "--branch: bad count '%s'\n", v);
                return false;
            }
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v)
                return false;
            args.hunt_seed = std::strtoull(v, nullptr, 0);
        } else if (arg == "--no-minimize") {
            args.no_minimize = true;
        } else if (arg == "--out") {
            const char* v = next();
            if (!v)
                return false;
            args.outfile = v;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return false;
        }
    }
    return true;
}

/// Reconnect policy shared by client/worker/check --remote.
net::RetryOptions retry_options(const Args& args) {
    net::RetryOptions retry;
    retry.attempts = static_cast<int>(args.retry_attempts);
    retry.backoff_ms = args.retry_backoff_ms;
    return retry;
}

/// Checker configuration shared by check/batch/watch: mode, hold
/// obligations, and the entailment backend.
check::CheckOptions check_options(const Args& args) {
    check::CheckOptions opts;
    if (args.classic)
        opts.mode = check::CheckerMode::ClassicSecVerilog;
    opts.hold_obligations = !args.no_hold;
    if (!args.solver.empty())
        opts.solver.backend = *solver::parse_backend(args.solver);
    return opts;
}

/// Elaborates args.file through the unified pipeline for the non-checking
/// commands (emit/sim/synth/taint). Prints diagnostics and returns null
/// on any phase failure.
std::unique_ptr<pipeline::Compilation> elaborate_file(const Args& args) {
    pipeline::CompilationOptions popts;
    popts.top = args.top;
    auto comp = std::make_unique<pipeline::Compilation>(std::move(popts));
    if (!comp->load_file(args.file) || !comp->elaborate()) {
        std::fputs(comp->render_diagnostics().c_str(), stderr);
        return nullptr;
    }
    return comp;
}

int cmd_check(const Args& args) {
    // --remote: forward the request to a running `svlc serve` daemon and
    // fall back silently to the in-process path when nothing is
    // listening. The daemon renders through the same pipeline helpers,
    // so both paths are byte-identical.
    if (!args.socket_path.empty()) {
        serve::RemoteCheckResult remote;
        if (serve::remote_check(args.socket_path, args.file, args.top,
                                check_options(args), remote,
                                retry_options(args))) {
            std::fputs(remote.diagnostics.c_str(), stderr);
            std::fputs(remote.human.c_str(), stdout);
            if (remote.status == "error")
                return 1;
            if (!args.json_path.empty()) {
                std::ofstream out(args.json_path);
                if (!out) {
                    std::fprintf(stderr, "cannot write '%s'\n",
                                 args.json_path.c_str());
                    return 2;
                }
                out << remote.report_json;
                std::fprintf(stderr, "wrote %s\n", args.json_path.c_str());
            }
            if (args.stats)
                std::fputs(remote.stats_line.c_str(), stderr);
            return remote.status == "secure" ? 0 : 1;
        }
    }
    pipeline::CompilationOptions popts;
    popts.top = args.top;
    popts.check = check_options(args);
    pipeline::Compilation comp(std::move(popts));
    if (!comp.load_file(args.file)) {
        std::fputs(comp.render_diagnostics().c_str(), stderr);
        return 1;
    }
    // --store: replay unchanged obligations from the persistent store and
    // write freshly solved verdicts through. A broken store degrades to a
    // cold check, never a failed one.
    std::unique_ptr<incr::ArtifactStore> store;
    if (!args.store_dir.empty()) {
        incr::StoreOptions sopts;
        sopts.dir = args.store_dir;
        auto s = std::make_unique<incr::ArtifactStore>(sopts);
        std::string serror;
        if (s->open(serror))
            store = std::move(s);
        else
            std::fprintf(stderr, "svlc: store disabled: %s\n",
                         serror.c_str());
    }
    std::optional<incr::ObligationReplayer> oracle;
    if (store && comp.elaborate()) {
        oracle.emplace(*store, *comp.design(), comp.options().check);
        comp.options().check.oracle = &*oracle;
    }
    const check::CheckResult* checked = comp.check();
    comp.options().check.oracle = nullptr;
    std::fputs(comp.render_diagnostics().c_str(), stderr);
    if (!checked)
        return 1;
    const check::CheckResult& result = *checked;
    std::fputs(pipeline::check_human_summary(comp, result).c_str(), stdout);
    if (!args.json_path.empty()) {
        std::ofstream out(args.json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         args.json_path.c_str());
            return 2;
        }
        out << pipeline::check_report_json(comp, result, args.file);
        std::fprintf(stderr, "wrote %s\n", args.json_path.c_str());
    }
    if (args.stats) {
        std::fputs(pipeline::solver_stats_line(result.solver_stats).c_str(),
                   stderr);
        if (store)
            std::fprintf(stderr, "incremental: %zu replayed, %zu re-solved\n",
                         result.obligations_replayed,
                         result.obligations_solved);
    }
    return result.ok ? 0 : 1;
}

int cmd_serve(const Args& args) {
    serve::ServeOptions opts;
    opts.socket_path = args.socket_path;
    opts.store_dir = args.store_dir;
    if (args.max_sessions)
        opts.max_sessions = args.max_sessions;
    opts.idle_timeout_sec = args.idle_timeout_sec;
    opts.default_timeout_ms = args.timeout_ms;
    opts.default_check = check_options(args);
    serve::Server server(std::move(opts));
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "svlc serve: %s\n", error.c_str());
        return 2;
    }
    std::fprintf(stderr, "svlc serve: listening on %s\n",
                 server.socket_path().c_str());
    return server.run();
}

int cmd_client(const Args& args) {
    std::string error;
    auto client =
        serve::Client::connect(args.socket_path, retry_options(args), error);
    if (!client) {
        std::fprintf(stderr, "svlc client: %s\n", error.c_str());
        return 2;
    }
    JsonValue params;
    if (!JsonReader::parse(args.client_params, params, error)) {
        std::fprintf(stderr, "svlc client: bad params: %s\n", error.c_str());
        return 2;
    }
    serve::RpcMessage response;
    std::vector<serve::RpcMessage> notifications;
    if (!client->call(args.client_method, params, response, error,
                      &notifications)) {
        std::fprintf(stderr, "svlc client: %s\n", error.c_str());
        return 2;
    }
    for (const serve::RpcMessage& n : notifications)
        std::fprintf(stderr, "notification %s: %s\n", n.method.c_str(),
                     n.params.dump().c_str());
    if (response.has_error) {
        std::fprintf(stderr, "error %d: %s\n", response.error_code,
                     response.error_message.c_str());
        return 1;
    }
    std::printf("%s\n", response.result.dump(2).c_str());
    return 0;
}

int cmd_coordinator(const Args& args) {
    std::vector<driver::JobSpec> jobs;
    std::string error;
    if (!args.file.empty() && !driver::collect_jobs(args.file, jobs, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    if (args.cpus) {
        auto cpu_jobs = driver::builtin_cpu_jobs();
        jobs.insert(jobs.end(), std::make_move_iterator(cpu_jobs.begin()),
                    std::make_move_iterator(cpu_jobs.end()));
    }

    dist::CoordinatorOptions opts;
    opts.socket_path = args.socket_path;
    if (!args.no_store)
        opts.store_dir = args.store_dir;
    opts.timeout_ms = args.timeout_ms;
    if (args.lease_ms)
        opts.lease_ms = args.lease_ms;
    if (args.coord_backoff_ms)
        opts.backoff_ms = args.coord_backoff_ms;
    opts.check = check_options(args);

    size_t job_count = jobs.size();
    dist::Coordinator coord(std::move(opts), std::move(jobs));
    if (!coord.start(error)) {
        std::fprintf(stderr, "svlc coordinator: %s\n", error.c_str());
        return 2;
    }
    std::fprintf(stderr, "svlc coordinator: serving %zu job(s) on %s\n",
                 job_count, coord.socket_path().c_str());
    driver::BatchReport report = coord.run();

    // Same split as `svlc batch`: the deterministic verdict summary on
    // stdout (diffable against a single-process run), telemetry on
    // stderr and in the JSON report.
    std::fputs(report.summary().c_str(), stdout);
    const dist::CoordinatorStats& st = coord.stats();
    std::fprintf(
        stderr,
        "coordinator wall %.1f ms, %llu worker(s); %llu lease(s) issued, "
        "%llu expired, %llu reclaimed, %llu steal(s), %llu duplicate "
        "result(s), %llu store skip(s)\n",
        report.wall_ms,
        static_cast<unsigned long long>(st.workers_registered),
        static_cast<unsigned long long>(st.leases_issued),
        static_cast<unsigned long long>(st.leases_expired),
        static_cast<unsigned long long>(st.leases_reclaimed),
        static_cast<unsigned long long>(st.steals),
        static_cast<unsigned long long>(st.duplicate_results),
        static_cast<unsigned long long>(st.store_skips));
    if (!args.json_path.empty()) {
        std::ofstream out(args.json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         args.json_path.c_str());
            return 2;
        }
        out << report.to_json(true);
        std::fprintf(stderr, "wrote %s\n", args.json_path.c_str());
    }
    return report.all_ran() ? 0 : 1;
}

int cmd_worker(const Args& args) {
    dist::WorkerOptions opts;
    opts.socket_path = args.socket_path;
    opts.store_dir = args.store_dir;
    opts.name = args.worker_name;
    opts.retry = retry_options(args);
    dist::Worker worker(std::move(opts));
    std::string error;
    if (!worker.run(error)) {
        std::fprintf(stderr, "svlc worker: %s\n", error.c_str());
        return 2;
    }
    const dist::WorkerStats& st = worker.stats();
    std::fprintf(
        stderr,
        "svlc worker: %llu lease(s), %llu verified, %llu store hit(s), "
        "%llu verdict(s) + %llu entailment(s) pushed\n",
        static_cast<unsigned long long>(st.leases),
        static_cast<unsigned long long>(st.verified),
        static_cast<unsigned long long>(st.store_hits),
        static_cast<unsigned long long>(st.pushed_verdicts),
        static_cast<unsigned long long>(st.pushed_entail));
    return 0;
}

int cmd_batch(const Args& args) {
    std::vector<driver::JobSpec> jobs;
    std::string error;
    if (!driver::collect_jobs(args.file, jobs, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    if (args.cpus) {
        auto cpu_jobs = driver::builtin_cpu_jobs();
        jobs.insert(jobs.end(), std::make_move_iterator(cpu_jobs.begin()),
                    std::make_move_iterator(cpu_jobs.end()));
    }

    driver::DriverOptions opts;
    opts.jobs = args.jobs;
    opts.timeout_ms = args.timeout_ms;
    opts.use_cache = !args.no_cache;
    if (!args.no_store)
        opts.store_dir = args.store_dir;
    opts.check = check_options(args);

    driver::VerificationDriver drv(opts);
    if (args.warm) {
        // Untimed warm-up pass: populate the entailment cache so the
        // reported run measures steady-state (CI dashboard) behaviour.
        (void)drv.run(jobs);
    }
    driver::BatchReport report = drv.run(jobs);

    // The stdout summary is deterministic (verdicts only); timings and
    // cache telemetry go to stderr and the JSON report.
    std::fputs(report.summary().c_str(), stdout);
    std::fprintf(stderr,
                 "batch wall %.1f ms on %zu worker(s); cache: %llu hits / "
                 "%llu misses (%.1f%%), %llu entries\n",
                 report.wall_ms, report.workers,
                 static_cast<unsigned long long>(report.cache.hits),
                 static_cast<unsigned long long>(report.cache.misses),
                 report.cache.hit_rate() * 100.0,
                 static_cast<unsigned long long>(report.cache.entries));
    if (report.store_enabled) {
        std::fprintf(
            stderr,
            "store: %zu skipped via fingerprint, %llu stored, %llu entail "
            "entries loaded / %llu flushed, %llu corrupt discarded\n",
            report.skipped_count(),
            static_cast<unsigned long long>(report.store.verdict_stores),
            static_cast<unsigned long long>(report.store.entail_loaded),
            static_cast<unsigned long long>(report.store.entail_flushed),
            static_cast<unsigned long long>(report.store.corrupt_discarded));
        size_t replayed = 0, solved = 0;
        for (const auto& r : report.results) {
            replayed += r.obligations_replayed;
            solved += r.obligations_solved;
        }
        std::fprintf(
            stderr,
            "store: %zu obligation(s) replayed, %zu re-solved, %llu "
            "obligation record(s) written\n",
            replayed, solved,
            static_cast<unsigned long long>(report.store.obligation_stores));
    }
    if (!args.json_path.empty()) {
        std::ofstream out(args.json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         args.json_path.c_str());
            return 2;
        }
        out << report.to_json(true);
        std::fprintf(stderr, "wrote %s\n", args.json_path.c_str());
    }
    // Rejected designs are a successful verification outcome; only
    // infrastructure failures (error/timeout) fail the batch.
    return report.all_ran() ? 0 : 1;
}

int cmd_watch(const Args& args) {
    driver::WatchOptions opts;
    opts.driver.jobs = args.jobs;
    opts.driver.timeout_ms = args.timeout_ms;
    opts.driver.use_cache = !args.no_cache;
    if (!args.no_store)
        opts.driver.store_dir = args.store_dir;
    opts.driver.check = check_options(args);
    opts.interval_ms = args.interval_ms;
    opts.max_iterations = args.iterations;
    opts.include_cpus = args.cpus;
    return driver::run_watch(args.file, opts, stdout, stderr);
}

int cmd_diff(const Args& args) {
    std::vector<driver::JobSpec> jobs;
    std::string error;
    if (!driver::collect_jobs(args.file, jobs, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    if (args.cpus) {
        auto cpu_jobs = driver::builtin_cpu_jobs();
        jobs.insert(jobs.end(), std::make_move_iterator(cpu_jobs.begin()),
                    std::make_move_iterator(cpu_jobs.end()));
    }
    driver::DriverOptions opts;
    opts.jobs = args.jobs;
    opts.timeout_ms = args.timeout_ms;
    opts.check = check_options(args);
    std::vector<driver::BackendDiff> diffs = driver::diff_backends(jobs, opts);
    if (diffs.empty()) {
        std::printf("diff-backends: %zu job(s), enum, prune, and cdcl agree "
                    "on every verdict\n",
                    jobs.size());
        return 0;
    }
    for (const auto& d : diffs)
        std::printf("DIFF %s %s: enum=%s %s=%s\n", d.job.c_str(),
                    d.field.c_str(), d.enum_value.c_str(), d.backend.c_str(),
                    d.other_value.c_str());
    std::printf("diff-backends: %zu disagreement(s) across %zu job(s) — "
                "backend contract violated\n",
                diffs.size(), jobs.size());
    return 1;
}

int cmd_emit(const Args& args) {
    auto comp = elaborate_file(args);
    if (!comp)
        return 1;
    codegen::EmitOptions opts;
    if (args.compat)
        opts.dialect = codegen::Dialect::SvlcCompat;
    std::string verilog =
        codegen::emit_verilog(*comp->design(), comp->diags(), opts);
    if (comp->diags().has_errors()) {
        std::fputs(comp->render_diagnostics().c_str(), stderr);
        return 1;
    }
    std::fputs(verilog.c_str(), stdout);
    return 0;
}

int cmd_sim(const Args& args) {
    auto comp = elaborate_file(args);
    if (!comp)
        return 1;
    const hir::Design* design = comp->design();
    sim::Simulator simulator(*design);
    for (const auto& [name, value] : args.sets)
        simulator.set_input(name, value);

    std::ofstream vcd_file;
    std::unique_ptr<sim::VcdWriter> vcd;
    std::vector<hir::NetId> watch_ids;
    for (const auto& w : args.watches) {
        hir::NetId id = design->find_net(w);
        if (id == hir::kInvalidNet) {
            std::fprintf(stderr, "no net named '%s'\n", w.c_str());
            return 1;
        }
        watch_ids.push_back(id);
    }
    if (!args.vcd_path.empty()) {
        vcd_file.open(args.vcd_path);
        vcd = std::make_unique<sim::VcdWriter>(*design, vcd_file, watch_ids);
        vcd->begin();
    }
    for (uint64_t i = 0; i < args.cycles; ++i) {
        simulator.step();
        if (vcd)
            vcd->sample(simulator);
    }
    simulator.settle();
    std::printf("ran %llu cycles\n",
                static_cast<unsigned long long>(args.cycles));
    const auto& nets = watch_ids.empty() ? [&] {
        std::vector<hir::NetId> all;
        for (const auto& net : design->nets)
            if (net.array_size == 0)
                all.push_back(net.id);
        return all;
    }() : watch_ids;
    for (hir::NetId id : nets) {
        const auto& net = design->net(id);
        std::printf("  %-24s = 0x%llx", net.name.c_str(),
                    static_cast<unsigned long long>(
                        simulator.get(id).value()));
        if (!net.label.is_static())
            std::printf("  {%s}",
                        design->policy.lattice()
                            .name(simulator.current_label(id))
                            .c_str());
        std::printf("\n");
    }
    for (const auto& v : simulator.violations())
        std::printf("assume violated at cycle %llu\n",
                    static_cast<unsigned long long>(v.cycle));
    return 0;
}

int cmd_synth(const Args& args) {
    auto comp = elaborate_file(args);
    if (!comp)
        return 1;
    const hir::Design* design = comp->design();
    synth::SynthOptions opts;
    opts.use_enable_ff = !args.no_enable_ff;
    opts.target_clock_ns = args.clock;
    auto report = synth::synthesize(*design, opts);
    std::printf("%s\n", report.summary().c_str());
    for (const auto& [name, count] : report.cells.by_name)
        std::printf("  %-8s %8llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
    if (report.sram_bits)
        std::printf("  SRAM     %8llu bits (%.0f um^2)\n",
                    static_cast<unsigned long long>(report.sram_bits),
                    report.sram_area_um2);
    return report.meets_target ? 0 : 1;
}

int cmd_taint(const Args& args) {
    auto comp = elaborate_file(args);
    if (!comp)
        return 1;
    const hir::Design* design = comp->design();
    sim::Simulator simulator(*design);
    verify::TaintTracker tracker(*design);
    for (const auto& [name, value] : args.sets)
        simulator.set_input(name, value);
    for (uint64_t i = 0; i < args.cycles; ++i)
        tracker.step(simulator);
    std::printf("ran %llu cycles with GLIFT-style tracking: %zu "
                "violation(s)\n",
                static_cast<unsigned long long>(args.cycles),
                tracker.violations().size());
    for (const auto& v : tracker.violations()) {
        std::printf("  cycle %llu: net '%s' tainted %s but labeled %s\n",
                    static_cast<unsigned long long>(v.cycle),
                    design->net(v.net).name.c_str(),
                    design->policy.lattice().name(v.taint).c_str(),
                    design->policy.lattice().name(v.declared).c_str());
        if (tracker.violations().size() > 10)
            break;
    }
    return tracker.violations().empty() ? 0 : 1;
}

int cmd_hunt(const Args& args) {
    auto comp = elaborate_file(args);
    if (!comp)
        return 1;
    const hir::Design* design = comp->design();

    hunt::HuntOptions opts;
    opts.depth = args.hunt_depth;
    opts.beam = static_cast<size_t>(args.hunt_beam);
    opts.branch = static_cast<size_t>(args.hunt_branch);
    opts.seed = args.hunt_seed;
    opts.minimize = !args.no_minimize;
    if (!args.observer.empty()) {
        auto lvl = design->policy.lattice().find(args.observer);
        if (!lvl) {
            std::fprintf(stderr, "hunt: unknown observer level '%s'\n",
                         args.observer.c_str());
            return 2;
        }
        opts.observer = *lvl;
    }

    hunt::HuntResult result = hunt::hunt(*design, opts);
    std::fputs(hunt::render_hunt(*design, result).c_str(), stdout);
    if (!args.json_path.empty()) {
        std::string json = hunt::hunt_json(*design, result);
        if (args.json_path == "-") {
            std::fputs(json.c_str(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::string err;
            if (!write_file_atomic(args.json_path, json, &err)) {
                std::fprintf(stderr, "hunt: %s\n", err.c_str());
                return 1;
            }
        }
    }
    return result.verdict == hunt::HuntVerdict::Leak ? 1 : 0;
}

int cmd_hunt_corpus(const Args& args) {
    std::vector<hunt::Scenario> scenarios = hunt::builtin_scenarios();
    std::string error;
    if (!hunt::write_corpus(args.corpus_out, scenarios, error)) {
        std::fprintf(stderr, "hunt-corpus: %s\n", error.c_str());
        return 1;
    }
    size_t planted = 0;
    for (const hunt::Scenario& sc : scenarios)
        planted += sc.planted_leak ? 1 : 0;
    std::printf("wrote %zu scenario(s) (%zu with planted leaks) and a "
                "hunt manifest to %s\n",
                scenarios.size(), planted, args.corpus_out.c_str());
    return 0;
}

int cmd_dump_cpu(const Args& args) {
    std::string text;
    std::string suggested;
    if (args.extra == "labeled") {
        text = proc::labeled_cpu_source();
        suggested = "cpu_labeled.svlc";
    } else if (args.extra == "baseline") {
        text = proc::baseline_cpu_source();
        suggested = "cpu_baseline.svlc";
    } else if (args.extra == "vulnerable") {
        text = proc::vulnerable_cpu_source();
        suggested = "cpu_vulnerable.svlc";
    } else if (args.extra == "quad") {
        text = proc::quad_core_source();
        suggested = "quad.svlc";
    } else {
        std::fprintf(stderr, "unknown variant '%s'\n", args.extra.c_str());
        return 2;
    }
    if (args.outfile.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        std::ofstream out(args.outfile);
        out << text;
        std::printf("wrote %s (%zu bytes)\n", args.outfile.c_str(),
                    text.size());
    }
    (void)suggested;
    return 0;
}

int cmd_asm(const Args& args) {
    std::ifstream in(args.file);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", args.file.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto result = proc::assemble(buf.str());
    if (!result.ok) {
        std::fprintf(stderr, "%s\n", result.error.c_str());
        return 1;
    }
    std::ostream* out = &std::cout;
    std::ofstream file;
    if (!args.outfile.empty()) {
        file.open(args.outfile);
        out = &file;
    }
    char line[16];
    for (uint32_t w : result.words) {
        std::snprintf(line, sizeof line, "%08x\n", w);
        *out << line;
    }
    std::fprintf(stderr, "%zu words", result.words.size());
    for (const auto& [name, addr] : result.labels)
        std::fprintf(stderr, "  %s=0x%x", name.c_str(), addr);
    std::fprintf(stderr, "\n");
    return 0;
}

int cmd_disasm(const Args& args) {
    std::ifstream in(args.file);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", args.file.c_str());
        return 1;
    }
    std::string line;
    uint32_t addr = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        uint32_t word = static_cast<uint32_t>(
            std::strtoul(line.c_str(), nullptr, 16));
        std::printf("%08x:  %08x  %s\n", addr, word,
                    proc::disassemble(word).c_str());
        addr += 4;
    }
    return 0;
}

int cmd_fuzz(const Args& args) {
    fuzz::FuzzOptions opts;
    opts.seed = args.fuzz_seed;
    opts.count = args.fuzz_count;
    opts.corpus_dir = args.corpus_dir;
    opts.reduce_failures = !args.no_reduce;
    opts.dump_only = args.dump;
    if (!args.oracle.empty() &&
        !fuzz::parse_oracle_set(args.oracle, opts.oracles)) {
        std::fprintf(stderr,
                     "fuzz: unknown oracle set '%s' (expected all or a "
                     "comma list of no-crash,diff,soundness,roundtrip,"
                     "xform)\n",
                     args.oracle.c_str());
        return 2;
    }
    fuzz::FuzzStats stats = fuzz::run_fuzz(opts, stdout);
    if (stats.violations.empty())
        return 0;
    std::fprintf(stderr, "fuzz: %zu oracle violation(s); reports in %s\n",
                 stats.violations.size(), opts.corpus_dir.c_str());
    return 1;
}

/// Builds the reduce predicate from --oracle: "diag:<code>" keeps
/// shrinking while the named diagnostic is still reported; an oracle set
/// keeps shrinking while any of those oracles still fires.
bool reduce_predicate(const Args& args, const std::string& spec,
                      std::function<bool(const std::string&)>& pred,
                      std::string& describe) {
    if (spec.rfind("diag:", 0) == 0) {
        std::string name = spec.substr(5);
        DiagCode code;
        if (!diag_code_from_name(name, code)) {
            std::fprintf(stderr, "reduce: unknown diagnostic code '%s'\n",
                         name.c_str());
            return false;
        }
        check::CheckOptions copts = check_options(args);
        pred = [code, copts](const std::string& cand) {
            pipeline::CompilationOptions popts;
            popts.check = copts;
            pipeline::Compilation comp(popts);
            comp.load_text(cand, "reduce.svlc");
            comp.check();
            return comp.diags().has_code(code);
        };
        describe = "diagnostic " + name;
        return true;
    }
    fuzz::OracleSet set;
    if (!fuzz::parse_oracle_set(spec, set)) {
        std::fprintf(stderr, "reduce: unknown oracle '%s'\n", spec.c_str());
        return false;
    }
    fuzz::OracleConfig cfg;
    pred = [set, cfg](const std::string& cand) {
        return !fuzz::run_oracles(set, cand, cfg).empty();
    };
    describe = "oracle set " + spec;
    return true;
}

int cmd_reduce(const Args& args) {
    std::string source;
    if (!read_file(args.file, source)) {
        std::fprintf(stderr, "reduce: cannot read %s\n", args.file.c_str());
        return 1;
    }
    std::string spec = args.oracle;
    if (spec.empty()) {
        // Auto-detect: find which oracle the input fails.
        fuzz::OracleConfig cfg;
        auto findings =
            fuzz::run_oracles(fuzz::OracleSet::all(), source, cfg);
        if (findings.empty()) {
            std::fprintf(stderr,
                         "reduce: %s does not violate any oracle; pass "
                         "--oracle NAME or --oracle diag:CODE for a "
                         "different predicate\n",
                         args.file.c_str());
            return 1;
        }
        spec = fuzz::oracle_name(findings.front().oracle);
        std::fprintf(stderr, "reduce: input fails oracle %s\n",
                     spec.c_str());
    }
    std::function<bool(const std::string&)> pred;
    std::string describe;
    if (!reduce_predicate(args, spec, pred, describe))
        return 2;
    fuzz::ReduceResult res = fuzz::reduce_text(source, pred);
    if (res.text == source && !pred(source)) {
        std::fprintf(stderr,
                     "reduce: input does not reproduce %s; nothing to do\n",
                     describe.c_str());
        return 1;
    }
    std::fprintf(stderr, "reduce: %zu -> %zu bytes (%zu predicate runs)\n",
                 source.size(), res.text.size(), res.attempts);
    if (!args.outfile.empty()) {
        std::string err;
        if (!write_file_atomic(args.outfile, res.text, &err)) {
            std::fprintf(stderr, "reduce: %s\n", err.c_str());
            return 1;
        }
        std::fprintf(stderr, "reduce: wrote %s\n", args.outfile.c_str());
    } else {
        std::fputs(res.text.c_str(), stdout);
    }
    return 0;
}

int dispatch(const Args& args) {
    if (args.command == "check")
        return cmd_check(args);
    if (args.command == "serve")
        return cmd_serve(args);
    if (args.command == "client")
        return cmd_client(args);
    if (args.command == "coordinator")
        return cmd_coordinator(args);
    if (args.command == "worker")
        return cmd_worker(args);
    if (args.command == "batch")
        return cmd_batch(args);
    if (args.command == "watch")
        return cmd_watch(args);
    if (args.command == "diff-backends")
        return cmd_diff(args);
    if (args.command == "emit-verilog")
        return cmd_emit(args);
    if (args.command == "sim")
        return cmd_sim(args);
    if (args.command == "synth")
        return cmd_synth(args);
    if (args.command == "taint")
        return cmd_taint(args);
    if (args.command == "hunt")
        return cmd_hunt(args);
    if (args.command == "hunt-corpus")
        return cmd_hunt_corpus(args);
    if (args.command == "dump-cpu")
        return cmd_dump_cpu(args);
    if (args.command == "asm")
        return cmd_asm(args);
    if (args.command == "disasm")
        return cmd_disasm(args);
    if (args.command == "fuzz")
        return cmd_fuzz(args);
    if (args.command == "reduce")
        return cmd_reduce(args);
    return usage();
}

} // namespace

int main(int argc, char** argv) {
    Args args;
    if (!parse_args(argc, argv, args))
        return usage();
    try {
        return dispatch(args);
    } catch (const std::exception& e) {
        // Backstop for internal invariant violations (e.g. BitVecError):
        // a diagnostic and a distinct exit code instead of an abort.
        std::fprintf(stderr, "svlc: internal error: %s\n", e.what());
        return 3;
    }
}
