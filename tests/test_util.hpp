// Shared helpers for the test suite: one-call compile (parse → elaborate →
// well-formedness) and check pipelines over inline SecVerilogLC source.
#pragma once

#include "check/typecheck.hpp"
#include "parse/parser.hpp"
#include "sem/elaborate.hpp"
#include "sem/wellformed.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace svlc::test {

struct Compiled {
    std::shared_ptr<SourceManager> sm;
    std::shared_ptr<DiagnosticEngine> diags;
    std::unique_ptr<hir::Design> design;

    [[nodiscard]] bool ok() const {
        return design != nullptr && !diags->has_errors();
    }
    [[nodiscard]] std::string errors() const { return diags->render(); }
};

/// Parses, elaborates, and runs well-formedness analysis.
inline Compiled compile(const std::string& source, const std::string& top = "") {
    Compiled out;
    out.sm = std::make_shared<SourceManager>();
    out.diags = std::make_shared<DiagnosticEngine>(out.sm.get());
    ast::CompilationUnit unit =
        Parser::parse_text(source, *out.sm, *out.diags, "test.svlc");
    if (out.diags->has_errors())
        return out;
    sem::ElaborateOptions opts;
    opts.top = top;
    out.design = sem::elaborate(unit, *out.diags, opts);
    if (!out.design)
        return out;
    sem::analyze_wellformed(*out.design, *out.diags);
    return out;
}

/// Compile then type-check; fails the current test on structural errors.
inline check::CheckResult check_source(const std::string& source,
                                       Compiled& compiled,
                                       check::CheckOptions opts = {}) {
    compiled = compile(source);
    EXPECT_TRUE(compiled.ok()) << compiled.errors();
    if (!compiled.ok())
        return {};
    return check::check_design(*compiled.design, *compiled.diags, opts);
}

/// The default two-point integrity policy header used by most tests.
inline std::string policy_header() {
    return R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
)";
}

} // namespace svlc::test
