// Dynamic-verification suite: observational-determinism dual runs, the
// GLIFT-style taint monitor, and the dynamic-clearing transform — the
// three pillars of the paper's security comparisons.
#include "test_util.hpp"
#include "verify/noninterference.hpp"
#include "verify/taint.hpp"
#include "xform/clearing.hpp"

#include <gtest/gtest.h>

namespace svlc::test {
namespace {

// Figure 3 with the untrusted register driven from an untrusted input, so
// the leak is dynamically exercisable.
const char* kFig3Driven = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module fig3(input com {T} in_v, input com [7:0] {U} in_u);
  reg seq {T} v;
  reg seq [7:0] {T} trusted;
  reg seq [7:0] {U} untrusted;
  reg seq [7:0] {mode_to_lb(v)} shared;
  always @(seq) begin
    v <= in_v;
    untrusted <= in_u;
    if (v == 1'b1) shared <= untrusted;
    else           trusted <= shared;
  end
endmodule
)";

LevelId trusted_level(const hir::Design& d) {
    return *d.policy.lattice().find("T");
}

TEST(Noninterference, ImplicitDowngradingLeaksDynamically) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    verify::NIConfig cfg;
    cfg.observer = trusted_level(*c.design);
    cfg.cycles = 64;
    cfg.trials = 4;
    auto result = verify::test_noninterference(*c.design, cfg);
    EXPECT_FALSE(result.ok)
        << "the Fig. 3 design must leak untrusted data to a trusted "
           "observer";
    ASSERT_FALSE(result.violations.empty());
}

TEST(Noninterference, DynamicClearingRestoresSecurity) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    auto report = xform::apply_dynamic_clearing(*c.design, *c.diags);
    EXPECT_EQ(report.cleared.size(), 1u);
    ASSERT_TRUE(sem::analyze_wellformed(*c.design, *c.diags)) << c.errors();
    verify::NIConfig cfg;
    cfg.observer = trusted_level(*c.design);
    cfg.cycles = 64;
    cfg.trials = 4;
    auto result = verify::test_noninterference(*c.design, cfg);
    EXPECT_TRUE(result.ok) << (result.violations.empty()
                                   ? ""
                                   : result.violations[0].description);
}

TEST(Noninterference, DynamicClearingDestroysTheValue) {
    // The clearing transform is secure but erases data on *every* label
    // change — including the benign U->... change where the designer
    // wanted the value preserved. This is the functional damage §2.1
    // describes.
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    xform::apply_dynamic_clearing(*c.design, *c.diags);
    ASSERT_TRUE(sem::analyze_wellformed(*c.design, *c.diags)) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("in_v", 1);
    sim.set_input("in_u", 0xAB);
    sim.run(3); // v settles to 1, shared latches 0xAB
    EXPECT_EQ(sim.get("shared").value(), 0xABu);
    sim.set_input("in_v", 0); // label will change U -> T: cleared
    sim.run(2);
    EXPECT_EQ(sim.get("shared").value(), 0u)
        << "dynamic clearing must erase the register on the label change";
}

TEST(Noninterference, WellTypedModeSwitchDesignPasses) {
    const char* src = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} go, input com [7:0] {U} in_u);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (go && (mode == 1'b1) && (next(mode) == 1'b0))
      r <= 8'h0;              // cleared on the U -> T upgrade
    else if (mode == 1'b1)
      r <= in_u;              // user data while label is U
  end
endmodule
)";
    Compiled c;
    auto check = check_source(src, c);
    ASSERT_TRUE(check.ok) << c.errors();
    verify::NIConfig cfg;
    cfg.observer = trusted_level(*c.design);
    cfg.cycles = 128;
    cfg.trials = 8;
    auto result = verify::test_noninterference(*c.design, cfg);
    EXPECT_TRUE(result.ok) << (result.violations.empty()
                                   ? ""
                                   : result.violations[0].description);
}

TEST(Taint, MonitorFlagsImplicitDowngrade) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("in_v", 1);
    sim.set_input("in_u", 0xCD);
    tracker.step(sim);
    tracker.step(sim);
    tracker.step(sim); // untrusted value now sits in `shared` (label U)
    EXPECT_TRUE(tracker.violations().empty());
    sim.set_input("in_v", 0); // label U -> T while the value stays
    tracker.step(sim);
    tracker.step(sim);
    EXPECT_FALSE(tracker.violations().empty())
        << "taint monitor must flag the tainted register becoming trusted";
}

TEST(Taint, CleanDesignStaysClean) {
    auto c = compile(R"(
module m(input com [7:0] {T} a, input com [7:0] {U} b);
  reg seq [7:0] {T} rt;
  reg seq [7:0] {U} ru;
  always @(seq) begin
    rt <= a + 8'h1;
    ru <= a + b;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("a", 3);
    sim.set_input("b", 7);
    for (int i = 0; i < 10; ++i)
        tracker.step(sim);
    EXPECT_TRUE(tracker.violations().empty());
    // Taints reflect data provenance.
    EXPECT_EQ(tracker.taint(c.design->find_net("rt")),
              *c.design->policy.lattice().find("T"));
    EXPECT_EQ(tracker.taint(c.design->find_net("ru")),
              *c.design->policy.lattice().find("U"));
}

TEST(Taint, ControlFlowPropagatesTaint) {
    auto c = compile(R"(
module m(input com {U} sel, input com [7:0] {T} a);
  reg seq [7:0] {U} r;
  always @(seq) begin
    if (sel) r <= a;
    else     r <= 8'h0;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("sel", 0);
    sim.set_input("a", 9);
    tracker.step(sim);
    // Even assigning the constant 0, the untrusted guard taints r.
    EXPECT_EQ(tracker.taint(c.design->find_net("r")),
              *c.design->policy.lattice().find("U"));
}

TEST(Taint, EndorseResetsTaint) {
    auto c = compile(R"(
module m(input com [7:0] {U} b, input com {T} accept);
  reg seq [7:0] {T} rt;
  always @(seq) begin
    if (accept) rt <= endorse(b, T);
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("b", 0x42);
    sim.set_input("accept", 1);
    tracker.step(sim);
    EXPECT_TRUE(tracker.violations().empty());
    EXPECT_EQ(tracker.taint(c.design->find_net("rt")),
              *c.design->policy.lattice().find("T"));
    EXPECT_EQ(sim.get("rt").value(), 0x42u);
}

TEST(Clearing, ReportListsClearedRegisters) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    auto report = xform::apply_dynamic_clearing(*c.design, *c.diags);
    ASSERT_EQ(report.cleared.size(), 1u);
    EXPECT_EQ(c.design->net(report.cleared[0]).name, "shared");
    EXPECT_EQ(report.inserted_writes, 1u);
}

TEST(Clearing, ClearsArraysElementwise) {
    auto c = compile(policy_header() + R"(
module m(input com {T} go, input com [7:0] {U} d, input com [1:0] {U} addr);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} gpr[0:3];
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (mode == 1'b1) gpr[addr] <= d;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto report = xform::apply_dynamic_clearing(*c.design, *c.diags);
    ASSERT_EQ(report.cleared.size(), 1u);
    EXPECT_EQ(report.inserted_writes, 4u);
    ASSERT_TRUE(sem::analyze_wellformed(*c.design, *c.diags)) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("go", 0);
    sim.set_input("d", 0x77);
    sim.set_input("addr", 1);
    // mode starts at 0 (label T); flip to user mode first.
    sim.set_input("go", 1);
    sim.step();
    sim.set_input("go", 0);
    sim.step(); // write 0x77 while mode==1
    EXPECT_EQ(sim.get_elem("gpr", 1).value(), 0x77u);
    sim.set_input("go", 1);
    sim.step(); // mode 1 -> 0: label change clears all elements
    EXPECT_EQ(sim.get_elem("gpr", 1).value(), 0u);
}

TEST(Clearing, LabelLevelMaterializationMatchesSemantics) {
    auto c = compile(policy_header() + R"(
module m(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    hir::NetId r = c.design->find_net("r");
    auto cur = xform::materialize_label_level(
        *c.design, c.design->net(r).label, /*next_cycle=*/false);
    sim::Simulator sim(*c.design);
    // mode == 0 -> level T (id of T in declaration order).
    EXPECT_EQ(sim.evaluate(*cur).value(),
              static_cast<uint64_t>(*c.design->policy.lattice().find("T")));
    sim.set_input("go", 1);
    sim.step();
    EXPECT_EQ(sim.evaluate(*cur).value(),
              static_cast<uint64_t>(*c.design->policy.lattice().find("U")));
}


TEST(Taint, SeqDowngradeEvaluatesPendingArgs) {
    // Downgrade labels in a sequential process are Gamma(r){r'/r}: the
    // function argument is the *next* value of a seq register, not the
    // stale one. `v` starts 1 (target U) but is assigned 0 in the same
    // step, so the endorse target is mode_to_lb(0) = T and `lo` is clean.
    auto c = compile(R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} in_v, input com [7:0] {U} in_u);
  reg seq {T} v = 1'b1;
  reg seq [7:0] {T} lo;
  always @(seq) begin
    v <= in_v;
    lo <= endorse(in_u, mode_to_lb(v));
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("in_v", 0);
    sim.set_input("in_u", 0x42);
    tracker.step(sim);
    tracker.step(sim);
    EXPECT_TRUE(tracker.violations().empty())
        << "stale-arg evaluation would endorse to U and flag lo";
    EXPECT_EQ(tracker.taint(c.design->find_net("lo")),
              *c.design->policy.lattice().find("T"));
}

TEST(Taint, SeqDowngradePendingArgsCatchWeakEndorse) {
    // The dual direction: `v` starts 0 (stale target T) but is assigned
    // 1, so the endorse really lands at mode_to_lb(1) = U and the write
    // into the trusted register must be flagged. Stale-arg evaluation
    // would silently accept it.
    auto c = compile(R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} in_v, input com [7:0] {U} in_u);
  reg seq {T} v = 1'b0;
  reg seq [7:0] {T} lo;
  always @(seq) begin
    v <= in_v;
    lo <= endorse(in_u, mode_to_lb(v));
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("in_v", 1);
    sim.set_input("in_u", 0x42);
    tracker.step(sim);
    EXPECT_FALSE(tracker.violations().empty())
        << "endorse target is U on the pending mode; lo is declared T";
}

} // namespace
} // namespace svlc::test
