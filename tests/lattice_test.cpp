#include "lattice/lattice.hpp"
#include "lattice/label_function.hpp"

#include <gtest/gtest.h>

namespace svlc {
namespace {

TEST(Lattice, TwoPointIntegrity) {
    Lattice l = Lattice::two_point_integrity();
    auto t = l.find("T"), u = l.find("U");
    ASSERT_TRUE(t && u);
    EXPECT_TRUE(l.flows(*t, *u));
    EXPECT_FALSE(l.flows(*u, *t));
    EXPECT_TRUE(l.flows(*t, *t));
    EXPECT_EQ(l.join(*t, *u), *u);
    EXPECT_EQ(l.meet(*t, *u), *t);
    EXPECT_EQ(l.bottom(), *t);
    EXPECT_EQ(l.top(), *u);
}

TEST(Lattice, TwoPointConfidentiality) {
    Lattice l = Lattice::two_point_confidentiality();
    auto p = l.find("P"), s = l.find("S");
    ASSERT_TRUE(p && s);
    EXPECT_TRUE(l.flows(*p, *s));
    EXPECT_FALSE(l.flows(*s, *p));
}

TEST(Lattice, DiamondJoinsAndMeets) {
    Lattice l = Lattice::diamond();
    auto lo = *l.find("LOW"), m1 = *l.find("M1"), m2 = *l.find("M2"),
         hi = *l.find("HIGH");
    EXPECT_TRUE(l.flows(lo, m1));
    EXPECT_TRUE(l.flows(lo, hi));
    EXPECT_FALSE(l.flows(m1, m2));
    EXPECT_FALSE(l.flows(m2, m1));
    EXPECT_EQ(l.join(m1, m2), hi);
    EXPECT_EQ(l.meet(m1, m2), lo);
    EXPECT_EQ(l.join(lo, m1), m1);
    EXPECT_EQ(l.bottom(), lo);
    EXPECT_EQ(l.top(), hi);
}

TEST(Lattice, RejectsCycle) {
    Lattice l;
    auto a = l.add_level("A");
    auto b = l.add_level("B");
    l.add_flow(a, b);
    l.add_flow(b, a);
    std::string err;
    EXPECT_FALSE(l.finalize(&err));
    EXPECT_NE(err.find("cycle"), std::string::npos);
}

TEST(Lattice, RejectsMissingUpperBound) {
    // Two incomparable maximal elements: no join.
    Lattice l;
    auto a = l.add_level("A");
    auto b = l.add_level("B");
    auto bot = l.add_level("BOT");
    l.add_flow(bot, a);
    l.add_flow(bot, b);
    std::string err;
    EXPECT_FALSE(l.finalize(&err));
}

TEST(Lattice, DuplicateLevelNamesCollapse) {
    Lattice l;
    auto a1 = l.add_level("A");
    auto a2 = l.add_level("A");
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(l.size(), 1u);
}

TEST(Lattice, TransitiveClosure) {
    Lattice l;
    auto a = l.add_level("A");
    auto b = l.add_level("B");
    auto c = l.add_level("C");
    l.add_flow(a, b);
    l.add_flow(b, c);
    ASSERT_TRUE(l.finalize());
    EXPECT_TRUE(l.flows(a, c));
}

TEST(LabelFunction, EvaluatesEntriesAndDefault) {
    Lattice lat = Lattice::two_point_integrity();
    LevelId t = *lat.find("T"), u = *lat.find("U");
    LabelFunction fn("mode_to_lb", {1}, u);
    fn.add_entry({0}, t);
    EXPECT_EQ(fn.evaluate({0}), t);
    EXPECT_EQ(fn.evaluate({1}), u);
}

TEST(LabelFunction, MasksArgumentsToDeclaredWidth) {
    Lattice lat = Lattice::two_point_integrity();
    LevelId t = *lat.find("T"), u = *lat.find("U");
    LabelFunction fn("f", {1}, u);
    fn.add_entry({0}, t);
    // 2 & mask(1) == 0 -> matches the entry for 0.
    EXPECT_EQ(fn.evaluate({2}), t);
}

TEST(LabelFunction, MultiArgument) {
    Lattice lat = Lattice::diamond();
    LevelId lo = *lat.find("LOW"), hi = *lat.find("HIGH");
    LabelFunction fn("pair", {1, 2}, hi);
    fn.add_entry({0, 0}, lo);
    EXPECT_EQ(fn.evaluate({0, 0}), lo);
    EXPECT_EQ(fn.evaluate({1, 0}), hi);
    EXPECT_EQ(fn.evaluate({0, 3}), hi);
}

TEST(LabelFunction, ConstantDetection) {
    Lattice lat = Lattice::two_point_integrity();
    LevelId t = *lat.find("T"), u = *lat.find("U");
    LabelFunction varying("v", {1}, u);
    varying.add_entry({0}, t);
    LevelId out;
    EXPECT_FALSE(varying.is_constant(lat, &out));

    LabelFunction constant("c", {1}, u);
    constant.add_entry({0}, u);
    ASSERT_TRUE(constant.is_constant(lat, &out));
    EXPECT_EQ(out, u);

    // Entries cover the full 1-bit domain with T even though default is U.
    LabelFunction covered("k", {1}, u);
    covered.add_entry({0}, t);
    covered.add_entry({1}, t);
    ASSERT_TRUE(covered.is_constant(lat, &out));
    EXPECT_EQ(out, t);
}

TEST(SecurityPolicy, FunctionLookup) {
    SecurityPolicy p(Lattice::two_point_integrity());
    LevelId u = *p.lattice().find("U");
    p.add_function(LabelFunction("f", {1}, u));
    EXPECT_TRUE(p.find_function("f").has_value());
    EXPECT_FALSE(p.find_function("g").has_value());
}

} // namespace
} // namespace svlc
