#include "support/bitvec.hpp"

#include <gtest/gtest.h>

namespace svlc {
namespace {

TEST(BitVec, ConstructionMasksToWidth) {
    BitVec v(4, 0xFF);
    EXPECT_EQ(v.width(), 4u);
    EXPECT_EQ(v.value(), 0xFu);
}

TEST(BitVec, FullWidth64) {
    BitVec v(64, ~uint64_t{0});
    EXPECT_EQ(v.value(), ~uint64_t{0});
    EXPECT_EQ(v.red_and().value(), 1u);
}

TEST(BitVec, ArithmeticWraps) {
    BitVec a(8, 0xFF), b(8, 1);
    EXPECT_EQ((a + b).value(), 0u);
    EXPECT_EQ((b - a).value(), 2u);
    EXPECT_EQ((a * a).value(), 1u); // 255*255 = 65025 & 0xFF = 1
}

TEST(BitVec, DivisionByZeroIsDeterministic) {
    BitVec a(8, 42), z(8, 0);
    EXPECT_EQ((a / z).value(), 0xFFu);
    EXPECT_EQ((a % z).value(), 42u);
}

TEST(BitVec, MixedWidthTakesMax) {
    BitVec a(4, 0xF), b(8, 0x10);
    BitVec s = a + b;
    EXPECT_EQ(s.width(), 8u);
    EXPECT_EQ(s.value(), 0x1Fu);
}

TEST(BitVec, ShiftsBeyondWidthYieldZero) {
    BitVec a(8, 0xAB);
    EXPECT_EQ((a << BitVec(8, 8)).value(), 0u);
    EXPECT_EQ((a >> BitVec(8, 9)).value(), 0u);
    EXPECT_EQ((a << BitVec(8, 4)).value(), 0xB0u);
}

TEST(BitVec, Comparisons) {
    BitVec a(8, 5), b(8, 9);
    EXPECT_TRUE(a.lt(b).to_bool());
    EXPECT_TRUE(a.le(a).to_bool());
    EXPECT_FALSE(a.gt(b).to_bool());
    EXPECT_TRUE(a.ne(b).to_bool());
    EXPECT_TRUE(a.eq(a).to_bool());
}

TEST(BitVec, Reductions) {
    EXPECT_EQ(BitVec(4, 0xF).red_and().value(), 1u);
    EXPECT_EQ(BitVec(4, 0x7).red_and().value(), 0u);
    EXPECT_EQ(BitVec(4, 0x0).red_or().value(), 0u);
    EXPECT_EQ(BitVec(4, 0x8).red_or().value(), 1u);
    EXPECT_EQ(BitVec(4, 0x3).red_xor().value(), 0u);
    EXPECT_EQ(BitVec(4, 0x7).red_xor().value(), 1u);
}

TEST(BitVec, SliceAndConcat) {
    BitVec v(16, 0xABCD);
    EXPECT_EQ(v.slice(15, 8).value(), 0xABu);
    EXPECT_EQ(v.slice(7, 0).value(), 0xCDu);
    EXPECT_EQ(v.slice(11, 4).value(), 0xBCu);
    BitVec hi(8, 0xAB), lo(8, 0xCD);
    BitVec cat = hi.concat(lo);
    EXPECT_EQ(cat.width(), 16u);
    EXPECT_EQ(cat.value(), 0xABCDu);
}

TEST(BitVec, ParseSizedLiterals) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse("16'h8000", v));
    EXPECT_EQ(v.width(), 16u);
    EXPECT_EQ(v.value(), 0x8000u);
    ASSERT_TRUE(BitVec::parse("4'b1010", v));
    EXPECT_EQ(v.value(), 0xAu);
    ASSERT_TRUE(BitVec::parse("8'd255", v));
    EXPECT_EQ(v.value(), 255u);
    ASSERT_TRUE(BitVec::parse("6'o77", v));
    EXPECT_EQ(v.value(), 63u);
    ASSERT_TRUE(BitVec::parse("32'hdead_beef", v));
    EXPECT_EQ(v.value(), 0xDEADBEEFu);
}

TEST(BitVec, ParsePlainDecimalDefaults32Bits) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse("42", v));
    EXPECT_EQ(v.width(), 32u);
    EXPECT_EQ(v.value(), 42u);
}

TEST(BitVec, ParseRejectsMalformed) {
    BitVec v;
    EXPECT_FALSE(BitVec::parse("", v));
    EXPECT_FALSE(BitVec::parse("8'", v));
    EXPECT_FALSE(BitVec::parse("8'q12", v));
    EXPECT_FALSE(BitVec::parse("4'b102", v));
    EXPECT_FALSE(BitVec::parse("0'h1", v));
    EXPECT_FALSE(BitVec::parse("65'h0", v));
    EXPECT_FALSE(BitVec::parse("8'hXZ", v));
}

TEST(BitVec, ValueTruncatesOnParseToWidth) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse("4'hFF", v));
    EXPECT_EQ(v.value(), 0xFu);
}

// Width-invariant violations must be checked errors in EVERY build mode:
// these used to be asserts, which vanish under NDEBUG and let a 65-bit
// concat silently wrap its shift amount.
TEST(BitVec, OutOfRangeWidthThrows) {
    EXPECT_THROW(BitVec(0, 0), BitVecError);
    EXPECT_THROW(BitVec(65, 0), BitVecError);
    EXPECT_THROW(BitVec(1u << 20, 0), BitVecError);
    EXPECT_NO_THROW(BitVec(1, 1));
    EXPECT_NO_THROW(BitVec(64, ~uint64_t{0}));
}

TEST(BitVec, ConcatAtSixtyFourBitBoundary) {
    BitVec hi(32, 0xDEADBEEF), lo(32, 0xCAFEF00D);
    BitVec full = hi.concat(lo);
    EXPECT_EQ(full.width(), 64u);
    EXPECT_EQ(full.value(), 0xDEADBEEFCAFEF00Dull);

    BitVec one(1, 1);
    EXPECT_EQ(one.concat(BitVec(63, 0)).width(), 64u);
    // 64 + 1 = 65 bits: must throw, not wrap.
    EXPECT_THROW(full.concat(one), BitVecError);
    EXPECT_THROW(one.concat(full), BitVecError);
}

TEST(BitVec, SliceBoundsAreChecked) {
    BitVec v(8, 0xA5);
    EXPECT_EQ(v.slice(7, 0).value(), 0xA5u);
    EXPECT_EQ(v.slice(3, 0).value(), 0x5u);
    EXPECT_THROW(v.slice(8, 0), BitVecError);  // hi >= width
    EXPECT_THROW(v.slice(2, 5), BitVecError);  // hi < lo
}

} // namespace
} // namespace svlc
