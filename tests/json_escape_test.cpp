// JsonWriter::escape hardening: fuzz reports embed raw generated (and
// mutated, i.e. arbitrary-byte) program text, so the escaper must turn
// ANY byte string into valid JSON — RFC 8259 escapes for controls,
// DEL escaped for safety, and invalid UTF-8 replaced with U+FFFD so the
// output stays decodable.
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace svlc {
namespace {

std::string esc(std::string_view s) { return JsonWriter::escape(s); }

TEST(JsonEscape, BasicEscapes) {
    EXPECT_EQ(esc("plain"), "plain");
    EXPECT_EQ(esc("a\"b"), "a\\\"b");
    EXPECT_EQ(esc("a\\b"), "a\\\\b");
    EXPECT_EQ(esc("a\nb\tc\rd"), "a\\nb\\tc\\rd");
}

TEST(JsonEscape, ControlCharactersUseUnicodeEscapes) {
    EXPECT_EQ(esc(std::string("\x01", 1)), "\\u0001");
    EXPECT_EQ(esc(std::string("\x1f", 1)), "\\u001f");
    EXPECT_EQ(esc(std::string("\x0b", 1)), "\\u000b");
}

TEST(JsonEscape, EmbeddedNulIsEscapedNotTruncated) {
    std::string s("a\0b", 3);
    EXPECT_EQ(esc(s), "a\\u0000b");
}

TEST(JsonEscape, DelIsEscaped) {
    // 0x7f is printable-adjacent but hostile to terminals and some JSON
    // consumers; escape it like the C0 controls.
    EXPECT_EQ(esc(std::string("\x7f", 1)), "\\u007f");
    EXPECT_EQ(esc(std::string("x\x7fy", 3)), "x\\u007fy");
}

TEST(JsonEscape, ValidUtf8PassesThrough) {
    EXPECT_EQ(esc("caf\xc3\xa9"), "caf\xc3\xa9");          // é
    EXPECT_EQ(esc("\xe2\x82\xac"), "\xe2\x82\xac");        // €
    EXPECT_EQ(esc("\xf0\x9f\x98\x80"), "\xf0\x9f\x98\x80"); // 😀
    EXPECT_EQ(esc("\xef\xbf\xbd"), "\xef\xbf\xbd");        // U+FFFD itself
    EXPECT_EQ(esc("\xf4\x8f\xbf\xbf"), "\xf4\x8f\xbf\xbf"); // U+10FFFF
}

TEST(JsonEscape, InvalidUtf8BecomesReplacementCharacter) {
    const std::string rep = "\xef\xbf\xbd";
    EXPECT_EQ(esc("\xff"), rep);             // never-valid byte
    EXPECT_EQ(esc("\x80"), rep);             // lone continuation
    EXPECT_EQ(esc("\xc3"), rep);             // truncated 2-byte seq
    EXPECT_EQ(esc("\xc0\xaf"), rep + rep);   // overlong encoding
    EXPECT_EQ(esc("\xe2\x82"), rep + rep);   // truncated 3-byte seq
    EXPECT_EQ(esc("\xed\xa0\x80"), rep + rep + rep); // UTF-16 surrogate
    EXPECT_EQ(esc("\xf4\x90\x80\x80"), rep + rep + rep + rep); // >U+10FFFF
    EXPECT_EQ(esc("a\xffz"), "a" + rep + "z"); // resync after bad byte
}

TEST(JsonEscape, MixedHostileStringStaysStructurallyValid) {
    std::string hostile("\"\\\x00\x7f\xff\xc3\xa9\n", 8);
    std::string out = esc(hostile);
    // No raw control bytes, quotes, or invalid sequences may remain.
    for (unsigned char c : out) {
        EXPECT_GE(c, 0x20u);
        EXPECT_NE(c, 0x7fu);
    }
    EXPECT_EQ(out, "\\\"\\\\\\u0000\\u007f\xef\xbf\xbd\xc3\xa9\\n");
}

} // namespace
} // namespace svlc
