// HIR simplification: directed rewrites plus the semantic-preservation
// property (simplified expressions evaluate identically under random
// total assignments) and design-level equivalence after simplifying the
// dynamic-clearing transform's output.
#include "proc/sources.hpp"
#include "proc/testbench.hpp"
#include "sim/simulator.hpp"
#include "solver/eval3.hpp"
#include "test_util.hpp"
#include "xform/clearing.hpp"
#include "xform/simplify.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <random>

namespace svlc::test {
namespace {

using hir::BinaryOp;
using hir::Expr;
using hir::ExprPtr;
using hir::UnaryOp;

TEST(Simplify, ConstantFolding) {
    auto e = Expr::make_binary(BinaryOp::Add,
                               Expr::make_const(BitVec(8, 3)),
                               Expr::make_const(BitVec(8, 4)));
    auto s = xform::simplify(std::move(e));
    ASSERT_EQ(s->kind, hir::ExprKind::Const);
    EXPECT_EQ(s->value.value(), 7u);
}

TEST(Simplify, Identities) {
    auto net = [] { return Expr::make_net(1, 8, false); };
    // x + 0 -> x
    auto e1 = xform::simplify(Expr::make_binary(
        BinaryOp::Add, net(), Expr::make_const(BitVec(8, 0))));
    EXPECT_EQ(e1->kind, hir::ExprKind::NetRef);
    // x & 0 -> 0
    auto e2 = xform::simplify(Expr::make_binary(
        BinaryOp::And, net(), Expr::make_const(BitVec(8, 0))));
    ASSERT_EQ(e2->kind, hir::ExprKind::Const);
    EXPECT_EQ(e2->value.value(), 0u);
    // x & 0xFF -> x
    auto e3 = xform::simplify(Expr::make_binary(
        BinaryOp::And, net(), Expr::make_const(BitVec(8, 0xFF))));
    EXPECT_EQ(e3->kind, hir::ExprKind::NetRef);
    // x == x -> 1
    auto e4 = xform::simplify(
        Expr::make_binary(BinaryOp::Eq, net(), net()));
    ASSERT_EQ(e4->kind, hir::ExprKind::Const);
    EXPECT_EQ(e4->value.value(), 1u);
    // ~~x -> x
    auto e5 = xform::simplify(Expr::make_unary(
        UnaryOp::BitNot, Expr::make_unary(UnaryOp::BitNot, net())));
    EXPECT_EQ(e5->kind, hir::ExprKind::NetRef);
}

TEST(Simplify, CondRewrites) {
    auto net = [] { return Expr::make_net(2, 8, false); };
    auto sel = Expr::make_net(3, 1, false);
    // const selector
    auto e1 = xform::simplify(Expr::make_cond(
        Expr::make_const(BitVec(1, 1)), net(),
        Expr::make_const(BitVec(8, 9))));
    EXPECT_EQ(e1->kind, hir::ExprKind::NetRef);
    // equal arms
    auto e2 = xform::simplify(
        Expr::make_cond(std::move(sel), net(), net()));
    EXPECT_EQ(e2->kind, hir::ExprKind::NetRef);
}

TEST(Simplify, DowngradesAreNeverDeleted) {
    // 0 && endorse(x, T): the algebraic value is 0, but the downgrade
    // carries policy meaning — the rewrite must not erase it.
    auto c = compile(policy_header() + R"(
module m(input com [7:0] {U} x);
  reg seq [7:0] {T} r;
  always @(seq) begin
    r <= endorse(x, T) & 8'h0;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto stats = xform::simplify_design(*c.design);
    (void)stats;
    // The downgrade site must still exist in the body.
    bool found = false;
    for (const auto& proc : c.design->processes) {
        std::function<void(const hir::Stmt&)> scan = [&](const hir::Stmt& s) {
            if (s.kind == hir::StmtKind::Assign) {
                std::function<void(const hir::Expr&)> walk =
                    [&](const hir::Expr& e) {
                        if (e.kind == hir::ExprKind::Downgrade)
                            found = true;
                        if (e.a) walk(*e.a);
                        if (e.b) walk(*e.b);
                        if (e.c) walk(*e.c);
                        for (const auto& p : e.parts) walk(*p);
                    };
                walk(*s.rhs);
            }
            for (const auto& st : s.stmts) scan(*st);
            if (s.then_stmt) scan(*s.then_stmt);
            if (s.else_stmt) scan(*s.else_stmt);
        };
        scan(*proc.body);
    }
    EXPECT_TRUE(found);
}

/// Property: simplification preserves evaluation under random total
/// assignments (reusing the solver-test random expression generator's
/// shape via a local copy here).
class SimplifySemantics : public ::testing::TestWithParam<uint64_t> {};

ExprPtr rand_expr(std::mt19937_64& rng, int depth) {
    if (depth == 0 || rng() % 4 == 0) {
        if (rng() % 3 == 0)
            return Expr::make_const(BitVec(8, rng()));
        return Expr::make_net(static_cast<hir::NetId>(rng() % 4), 8, false);
    }
    switch (rng() % 9) {
    case 0:
        return Expr::make_unary(UnaryOp::BitNot, rand_expr(rng, depth - 1));
    case 1:
        return Expr::make_binary(BinaryOp::Add, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    case 2:
        return Expr::make_binary(BinaryOp::And, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    case 3:
        return Expr::make_binary(BinaryOp::Or, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    case 4:
        return Expr::make_binary(BinaryOp::Xor, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    case 5:
        return Expr::make_binary(BinaryOp::Eq, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    case 6:
        return Expr::make_cond(rand_expr(rng, depth - 1),
                               rand_expr(rng, depth - 1),
                               rand_expr(rng, depth - 1));
    case 7:
        return Expr::make_binary(BinaryOp::Sub, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    default:
        return Expr::make_binary(BinaryOp::LogAnd, rand_expr(rng, depth - 1),
                                 rand_expr(rng, depth - 1));
    }
}

TEST_P(SimplifySemantics, RewritesPreserveEvaluation) {
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 100; ++trial) {
        ExprPtr original = rand_expr(rng, 5);
        ExprPtr copy = original->clone();
        ExprPtr simplified = xform::simplify(std::move(copy));
        for (int ext = 0; ext < 10; ++ext) {
            solver::Assignment asg;
            for (hir::NetId n = 0; n < 4; ++n)
                asg.set(n, false, BitVec(8, rng()));
            auto v1 = solver::eval3(*original, asg);
            auto v2 = solver::eval3(*simplified, asg);
            ASSERT_TRUE(v1.has_value());
            ASSERT_TRUE(v2.has_value());
            EXPECT_EQ(v1->value(), v2->value())
                << "seed " << GetParam() << " trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySemantics,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

TEST(Simplify, ClearedDesignStaysEquivalentAfterSimplification) {
    // Apply dynamic clearing (which materializes label-check muxes), then
    // simplify; the simplified design must simulate identically.
    const char* src = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} in_v, input com [7:0] {U} in_u);
  reg seq {T} v;
  reg seq [7:0] {mode_to_lb(v)} shared;
  always @(seq) begin
    v <= in_v;
    if (v == 1'b1) shared <= in_u;
  end
endmodule
)";
    auto a = compile(src);
    auto b = compile(src);
    ASSERT_TRUE(a.ok() && b.ok());
    DiagnosticEngine d1, d2;
    xform::apply_dynamic_clearing(*a.design, d1);
    xform::apply_dynamic_clearing(*b.design, d2);
    ASSERT_TRUE(sem::analyze_wellformed(*a.design, d1));
    auto stats = xform::simplify_design(*b.design);
    (void)stats; // the cleared logic may already be in normal form
    ASSERT_TRUE(sem::analyze_wellformed(*b.design, d2));

    sim::Simulator sa(*a.design), sb(*b.design);
    std::mt19937_64 rng(77);
    for (int cycle = 0; cycle < 300; ++cycle) {
        uint64_t iv = rng() & 1, iu = rng() & 0xFF;
        sa.set_input("in_v", iv);
        sb.set_input("in_v", iv);
        sa.set_input("in_u", iu);
        sb.set_input("in_u", iu);
        sa.step();
        sb.step();
        ASSERT_EQ(sa.get("shared").value(), sb.get("shared").value())
            << "cycle " << cycle;
    }
}

TEST(Simplify, ProcessorDesignSimplifiesAndStillChecks) {
    auto design = proc::compile_cpu(proc::labeled_cpu_source());
    auto stats = xform::simplify_design(*design);
    DiagnosticEngine diags;
    ASSERT_TRUE(sem::analyze_wellformed(*design, diags)) << diags.render();
    auto result = check::check_design(*design, diags);
    EXPECT_TRUE(result.ok) << diags.render();
    EXPECT_EQ(result.downgrade_count, 3u);
    (void)stats;
}

} // namespace
} // namespace svlc::test
