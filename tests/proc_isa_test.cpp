// Assembler and golden-model unit tests.
#include "proc/assembler.hpp"
#include "proc/golden.hpp"
#include "proc/isa.hpp"

#include <gtest/gtest.h>

namespace svlc::proc {
namespace {

TEST(Assembler, EncodesRType) {
    auto r = assemble("addu $3, $1, $2\n");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.words.size(), 1u);
    Instr i{r.words[0]};
    EXPECT_EQ(i.op(), 0u);
    EXPECT_EQ(i.funct(), 0x21u);
    EXPECT_EQ(i.rd(), 3u);
    EXPECT_EQ(i.rs(), 1u);
    EXPECT_EQ(i.rt(), 2u);
}

TEST(Assembler, EncodesImmediatesAndNegatives) {
    auto r = assemble("addiu $5, $4, -1\n");
    ASSERT_TRUE(r.ok) << r.error;
    Instr i{r.words[0]};
    EXPECT_EQ(i.op(), 0x09u);
    EXPECT_EQ(i.imm16(), 0xFFFFu);
    EXPECT_EQ(i.imm_sext(), 0xFFFFFFFFu);
}

TEST(Assembler, MemOperandsAndLabels) {
    auto r = assemble(R"(
start:  lw $2, 8($1)
        sw $2, -4($3)
        beq $2, $0, start
        j start
)");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.words.size(), 4u);
    Instr lw{r.words[0]};
    EXPECT_EQ(lw.op(), 0x23u);
    EXPECT_EQ(lw.imm16(), 8u);
    Instr beq{r.words[2]};
    // Branch offset: start(0) - (8 + 4) = -12 bytes = -3 words.
    EXPECT_EQ(static_cast<int16_t>(beq.imm16()), -3);
    Instr j{r.words[3]};
    EXPECT_EQ(j.target26(), 0u);
}

TEST(Assembler, OrgDirectiveAndGaps) {
    auto r = assemble(R"(
        addiu $1, $0, 1
        .org 0x20
k:      addiu $2, $0, 2
)");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.words.size(), 9u);
    EXPECT_EQ(r.words[1], kNop); // gap filled with NOPs
    EXPECT_EQ(r.labels.at("k"), 0x20u);
}

TEST(Assembler, ReportsErrors) {
    EXPECT_FALSE(assemble("bogus $1, $2\n").ok);
    EXPECT_FALSE(assemble("addu $1, $2\n").ok);       // arity
    EXPECT_FALSE(assemble("addu $1, $2, $99\n").ok);  // bad register
    EXPECT_FALSE(assemble("j nowhere\n").ok);         // unknown label
    EXPECT_FALSE(assemble("dup: nop\ndup: nop\n").ok);
}

TEST(Assembler, SyscallSysret) {
    auto r = assemble("syscall\nsysret\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.words[0], enc_syscall());
    EXPECT_EQ(r.words[1], enc_sysret());
}

TEST(Disassembler, RoundTripMnemonics) {
    EXPECT_EQ(disassemble(kNop), "nop");
    auto r = assemble("addu $3, $1, $2\n");
    EXPECT_EQ(disassemble(r.words[0]), "addu $3, $1, $2");
    EXPECT_EQ(disassemble(enc_syscall()), "syscall");
    EXPECT_EQ(disassemble(enc_sysret()), "sysret");
}

TEST(Golden, BasicAluAndMemory) {
    GoldenCpu cpu;
    auto prog = assemble(R"(
        addiu $1, $0, 10
        addiu $2, $0, 32
        addu $3, $1, $2
        sw $3, 0($2)
        lw $4, 0($2)
spin:   j spin
)");
    ASSERT_TRUE(prog.ok) << prog.error;
    cpu.load_program(prog.words);
    cpu.run(5);
    EXPECT_EQ(cpu.reg(3), 42u);
    EXPECT_EQ(cpu.reg(4), 42u);
    EXPECT_EQ(cpu.dmem_k(8), 42u); // kernel mode uses the kernel bank
    EXPECT_EQ(cpu.dmem_u(8), 0u);
}

TEST(Golden, RegisterZeroIsHardwired) {
    GoldenCpu cpu;
    auto prog = assemble("addiu $0, $0, 99\naddu $1, $0, $0\nspin: j spin\n");
    ASSERT_TRUE(prog.ok);
    cpu.load_program(prog.words);
    cpu.run(2);
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(1), 0u);
}

TEST(Golden, SyscallSemantics) {
    GoldenCpu cpu;
    auto kernel = assemble(R"(
        sysret
boot:   j boot
        .org 0x200
handler: addu $8, $4, $5
        sysret
k:      j k
)");
    auto user = assemble(R"(
        addiu $4, $0, 3
        addiu $5, $0, 4
        addiu $9, $0, 9
        syscall
        addiu $10, $0, 1
spin:   j spin
)");
    ASSERT_TRUE(kernel.ok && user.ok);
    cpu.load_kernel(kernel.words);
    cpu.load_user(user.words);
    // sysret -> user; 3 addius; syscall.
    cpu.run(5);
    EXPECT_EQ(cpu.mode(), 0u);
    EXPECT_EQ(cpu.pc(), ArchParams::kKernelEntry);
    EXPECT_EQ(cpu.epc(), 16u); // pc of syscall (12) + 4
    EXPECT_EQ(cpu.reg(4), 3u); // endorsed args preserved
    EXPECT_EQ(cpu.reg(5), 4u);
    EXPECT_EQ(cpu.reg(9), 0u); // everything else cleared
    // handler: addu; sysret.
    cpu.run(2);
    EXPECT_EQ(cpu.mode(), 1u);
    EXPECT_EQ(cpu.pc(), 16u);
    EXPECT_EQ(cpu.reg(8), 7u);
    cpu.run(1);
    EXPECT_EQ(cpu.reg(10), 1u);
}

TEST(Golden, SyscallInKernelIsNop) {
    GoldenCpu cpu;
    auto prog = assemble("syscall\naddiu $1, $0, 5\nspin: j spin\n");
    ASSERT_TRUE(prog.ok);
    cpu.load_program(prog.words);
    cpu.run(2);
    EXPECT_EQ(cpu.mode(), 0u);
    EXPECT_EQ(cpu.reg(1), 5u);
}

TEST(Golden, MmioRing) {
    GoldenCpu cpu;
    auto kernel = assemble("sysret\nboot: j boot\n");
    auto user = assemble(R"(
        addiu $1, $0, 0x3F8
        lw $2, 0($1)
        addiu $3, $0, 0x3FC
        sw $2, 0($3)
spin:   j spin
)");
    ASSERT_TRUE(kernel.ok && user.ok);
    cpu.load_kernel(kernel.words);
    cpu.load_user(user.words);
    cpu.set_net_in(0x1234);
    cpu.run(5);
    EXPECT_EQ(cpu.net_out(), 0x1234u);
}

TEST(Golden, SignedComparisons) {
    GoldenCpu cpu;
    auto prog = assemble(R"(
        addiu $1, $0, -5
        addiu $2, $0, 3
        slt $3, $1, $2
        sltu $4, $1, $2
        slti $5, $1, 0
spin:   j spin
)");
    ASSERT_TRUE(prog.ok);
    cpu.load_program(prog.words);
    cpu.run(5);
    EXPECT_EQ(cpu.reg(3), 1u); // signed: -5 < 3
    EXPECT_EQ(cpu.reg(4), 0u); // unsigned: huge > 3
    EXPECT_EQ(cpu.reg(5), 1u);
}

} // namespace
} // namespace svlc::proc
