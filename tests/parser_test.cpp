#include "ast/printer.hpp"
#include "parse/parser.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <gtest/gtest.h>

namespace svlc {
namespace {

ast::CompilationUnit parse_ok(const std::string& src) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    auto unit = Parser::parse_text(src, sm, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.render();
    return unit;
}

size_t parse_error_count(const std::string& src) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    (void)Parser::parse_text(src, sm, diags);
    return diags.error_count();
}

TEST(Lexer, TokenizesOperatorsAndLiterals) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    uint32_t id = sm.add_buffer("t", "a <= 16'hBEEF && b || !c -> =="
                                      " next endorse");
    Lexer lexer(sm.buffer_text(id), id, diags);
    auto toks = lexer.lex_all();
    ASSERT_FALSE(diags.has_errors());
    std::vector<TokKind> kinds;
    for (const auto& t : toks)
        kinds.push_back(t.kind);
    std::vector<TokKind> expected = {
        TokKind::Ident,    TokKind::LtEq,    TokKind::Number,
        TokKind::AmpAmp,   TokKind::Ident,   TokKind::PipePipe,
        TokKind::Bang,     TokKind::Ident,   TokKind::Arrow,
        TokKind::EqEq,     TokKind::KwNext,  TokKind::KwEndorse,
        TokKind::Eof,
    };
    EXPECT_EQ(kinds, expected);
}

TEST(Lexer, SkipsCommentsAndTracksLines) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    uint32_t id = sm.add_buffer("t", "// line comment\n/* block\n */ foo");
    Lexer lexer(sm.buffer_text(id), id, diags);
    auto toks = lexer.lex_all();
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].text, "foo");
    EXPECT_EQ(toks[0].loc.line, 3u);
}

TEST(Lexer, ReportsUnterminatedComment) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    uint32_t id = sm.add_buffer("t", "/* never closed");
    Lexer lexer(sm.buffer_text(id), id, diags);
    (void)lexer.lex_all();
    EXPECT_TRUE(diags.has_code(DiagCode::UnterminatedComment));
}

TEST(Parser, ModuleWithPortsAndNets) {
    auto unit = parse_ok(R"(
module m(input com {T} rst, output com [15:0] {U} out);
  wire com [15:0] {U} tmp;
  reg seq [15:0] {T} state = 16'h1;
  assign out = tmp;
  assign tmp = 16'habcd;
endmodule
)");
    ASSERT_EQ(unit.modules.size(), 1u);
    const auto& m = unit.modules[0];
    EXPECT_EQ(m.name, "m");
    ASSERT_EQ(m.port_order.size(), 2u);
    EXPECT_EQ(m.port_order[0], "rst");
    ASSERT_EQ(m.nets.size(), 4u);
    EXPECT_EQ(m.nets[2].name, "tmp");
    EXPECT_EQ(m.nets[3].kind, ast::NetKind::Seq);
    EXPECT_TRUE(m.nets[3].init != nullptr);
    EXPECT_EQ(m.assigns.size(), 2u);
}

TEST(Parser, LatticeAndFunctionDecls) {
    auto unit = parse_ok(R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} a);
endmodule
)");
    ASSERT_EQ(unit.lattices.size(), 1u);
    EXPECT_EQ(unit.lattices[0].levels.size(), 2u);
    ASSERT_EQ(unit.lattices[0].flows.size(), 1u);
    EXPECT_EQ(unit.lattices[0].flows[0].first, "T");
    ASSERT_EQ(unit.functions.size(), 1u);
    EXPECT_EQ(unit.functions[0].name, "mode_to_lb");
    ASSERT_EQ(unit.functions[0].arg_widths.size(), 1u);
    EXPECT_EQ(unit.functions[0].arg_widths[0], 1u);
    EXPECT_EQ(unit.functions[0].entries.size(), 2u);
}

TEST(Parser, AlwaysSeqWithNextAndDowngrade) {
    auto unit = parse_ok(R"(
module m(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go && (next(mode) == 1'b0))
      r <= endorse(r, T);
  end
endmodule
)");
    const auto& m = unit.modules[0];
    ASSERT_EQ(m.always_blocks.size(), 1u);
    EXPECT_EQ(m.always_blocks[0].kind, ast::AlwaysKind::Seq);
}

TEST(Parser, PosedgeClkSynonym) {
    auto unit = parse_ok(R"(
module m(input com {T} d);
  reg seq {T} q;
  always @(posedge clk) begin
    q <= d;
  end
endmodule
)");
    EXPECT_EQ(unit.modules[0].always_blocks[0].kind, ast::AlwaysKind::Seq);
}

TEST(Parser, CaseStatement) {
    auto unit = parse_ok(R"(
module m(input com [1:0] {T} sel);
  wire com [3:0] {T} out;
  always @(*) begin
    case (sel)
      2'b00: out = 4'h1;
      2'b01, 2'b10: out = 4'h2;
      default: out = 4'h0;
    endcase
  end
endmodule
)");
    ASSERT_EQ(unit.modules[0].always_blocks.size(), 1u);
    const auto& body = *unit.modules[0].always_blocks[0].body;
    ASSERT_EQ(body.kind, ast::StmtKind::Block);
    const auto& blk = static_cast<const ast::BlockStmt&>(body);
    ASSERT_EQ(blk.stmts.size(), 1u);
    EXPECT_EQ(blk.stmts[0]->kind, ast::StmtKind::Case);
}

TEST(Parser, InstanceWithParamsAndConnections) {
    auto unit = parse_ok(R"(
module child #(parameter W = 8)(input com [7:0] {T} a, output com [7:0] {T} y);
  assign y = a;
endmodule
module top(input com [7:0] {T} x, output com [7:0] {T} z);
  child #(.W(16)) u0(.a(x), .y(z));
endmodule
)");
    ASSERT_EQ(unit.modules.size(), 2u);
    const auto& top = unit.modules[1];
    ASSERT_EQ(top.instances.size(), 1u);
    EXPECT_EQ(top.instances[0].module_name, "child");
    EXPECT_EQ(top.instances[0].instance_name, "u0");
    ASSERT_EQ(top.instances[0].params.size(), 1u);
    ASSERT_EQ(top.instances[0].connections.size(), 2u);
}

TEST(Parser, OperatorPrecedence) {
    auto unit = parse_ok(R"(
module m(input com [7:0] {T} a, input com [7:0] {T} b);
  wire com {T} x;
  assign x = a + b * 8'h2 == 8'h6 && b < a;
endmodule
)");
    // a + (b*2) == 6, then (that) && (b < a)
    const auto& e = *unit.modules[0].assigns[0].rhs;
    ASSERT_EQ(e.kind, ast::ExprKind::Binary);
    EXPECT_EQ(static_cast<const ast::BinaryExpr&>(e).op, ast::BinaryOp::LogAnd);
}

TEST(Parser, JoinLabels) {
    auto unit = parse_ok(R"(
module m(input com {T join mode_to_lb(mode)} a);
  reg seq {T} mode;
endmodule
)");
    const auto& label = *unit.modules[0].nets[0].label;
    EXPECT_EQ(label.kind, ast::LabelKind::Join);
}

TEST(Parser, ErrorRecoveryProducesMultipleDiagnostics) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    (void)Parser::parse_text(R"(
module m(input com {T} a);
  assign = 5;
  wire com {T} w;
  assign w = ;
endmodule
)", sm, diags);
    EXPECT_GE(diags.error_count(), 2u);
}

TEST(Parser, RejectsGarbageAtTopLevel) {
    EXPECT_GE(parse_error_count("garbage tokens here"), 1u);
}

TEST(Printer, RoundTripsThroughParser) {
    auto unit = parse_ok(R"(
lattice { level T; level U; flow T -> U; }
function f(x:1) { 0 -> T; default -> U; }
module m(input com {T} rst, output com [7:0] {U} out);
  reg seq [7:0] {f(mode)} r = 8'h0;
  reg seq {T} mode;
  assign out = r;
  always @(seq) begin
    if (rst) r <= 8'b0;
    else r <= endorse(out, T);
  end
  always @(seq) begin
    mode <= ~mode;
  end
endmodule
)");
    std::string printed = ast::print(unit);
    SourceManager sm2;
    DiagnosticEngine diags2(&sm2);
    auto unit2 = Parser::parse_text(printed, sm2, diags2);
    EXPECT_FALSE(diags2.has_errors())
        << diags2.render() << "\nprinted:\n" << printed;
    EXPECT_EQ(unit2.modules.size(), 1u);
    // Printing the reparsed tree must be a fixpoint.
    EXPECT_EQ(ast::print(unit2), printed);
}

TEST(Printer, LabelErasureProducesPlainVerilogDecls) {
    auto unit = parse_ok(R"(
module m(input com {T} a);
  reg seq [3:0] {T} r;
  always @(seq) begin
    r <= {3'b0, a};
  end
endmodule
)");
    ast::PrintOptions opts;
    opts.erase_labels = true;
    std::string printed = ast::print(unit, opts);
    EXPECT_EQ(printed.find("{T}"), std::string::npos);
    EXPECT_EQ(printed.find(" seq "), std::string::npos);
    EXPECT_NE(printed.find("posedge clk"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Recovery hardening: truncated and hostile inputs must terminate with a
// bounded diagnostic cascade, never hang or recurse without limit.
// ---------------------------------------------------------------------------

TEST(ParserRecovery, EveryPrefixOfAProgramTerminates) {
    // Cutting a program mid-token, mid-expression, mid-block, or
    // mid-module exercises every recovery path; each prefix must parse to
    // completion with a sane number of diagnostics.
    const std::string src = R"(lattice { level L; level H; flow L -> H; }
function f(x:1) { 0 -> L; default -> H; }
module top(input com {L} a, output com [7:0] {H} b);
  reg seq {L} m = 1'h0;
  reg seq [7:0] {f(m)} r;
  wire com {L} w;
  assign w = a ^ 1'h1;
  assign b = {r[3:0], 4'hA};
  always @(seq) begin
    m <= a;
    case (m)
      0: r <= endorse(8'h12, H);
      default: r <= r;
    endcase
    if (next(m) == 1'h0) r <= 8'h0;
    else r <= r;
  end
endmodule
)";
    for (size_t len = 0; len <= src.size(); ++len) {
        SourceManager sm;
        DiagnosticEngine diags(&sm);
        (void)Parser::parse_text(src.substr(0, len), sm, diags);
        // Bounded cascade: a prefix can't produce more errors than a
        // small multiple of its token count.
        EXPECT_LT(diags.error_count(), 64u) << "prefix length " << len;
    }
}

TEST(ParserRecovery, StrayEndmoduleInsideBlockTerminates) {
    // Regression for a real hang found by the fuzzer (seed 4, index 275):
    // a spliced `begin` orphans the block's `end`, leaving statement
    // recovery parked on `endmodule`, which parse_block used to
    // re-dispatch on forever.
    size_t errs = parse_error_count("lattice { level L; }\n"
                                    "module top(output com {L} o);\n"
                                    "  reg seq {L} m;\n"
                                    "  always @(seq) begin\n"
                                    "    if (next(m) begin== 1'h1) m <= m;\n"
                                    "  end\n"
                                    "endmodule\n");
    EXPECT_GT(errs, 0u);
    EXPECT_LT(errs, 32u);
}

TEST(ParserRecovery, TruncatedCaseParkedOnEndTerminates) {
    // `end` closes the always-block, but case recovery stops at it
    // without consuming; the case loop must not spin.
    size_t errs = parse_error_count("lattice { level L; }\n"
                                    "module top(output com {L} o);\n"
                                    "  reg seq {L} m;\n"
                                    "  always @(seq) begin\n"
                                    "    case (m)\n"
                                    "      0: m <= 1'h0;\n"
                                    "  end\n"
                                    "endmodule\n");
    EXPECT_GT(errs, 0u);
    EXPECT_LT(errs, 32u);
}

TEST(ParserRecovery, DeepNestingHitsDepthLimitNotTheStack) {
    // 20k nested parens would overflow the stack without the depth cap;
    // with it, parsing finishes with a single depth diagnostic plus a
    // bounded trail.
    std::string deep = "lattice { level L; }\n"
                       "module top(output com {L} o);\n  assign o = ";
    for (int i = 0; i < 20000; ++i)
        deep += '(';
    deep += "1'h1";
    for (int i = 0; i < 20000; ++i)
        deep += ')';
    deep += ";\nendmodule\n";
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    (void)Parser::parse_text(deep, sm, diags);
    EXPECT_TRUE(diags.has_errors());
    EXPECT_NE(diags.render().find("nesting too deep"), std::string::npos);
    // One error per unwound frame at most: bounded by the depth cap,
    // not the 20k input parens.
    EXPECT_LT(diags.error_count(), 512u);
}

TEST(ParserRecovery, DeepBeginChainTerminates) {
    std::string deep = "lattice { level L; }\n"
                       "module top(output com {L} o);\n  always @(*) ";
    for (int i = 0; i < 5000; ++i)
        deep += "begin ";
    // No matching `end`s at all: truncated mid-nesting.
    deep += "\n";
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    (void)Parser::parse_text(deep, sm, diags);
    EXPECT_TRUE(diags.has_errors());
    EXPECT_LT(diags.error_count(), 10064u); // bounded by input size
}

} // namespace
} // namespace svlc
