// JsonReader / JsonValue: strict-subset acceptance, number identity,
// escape handling, and the three robustness properties the serve
// protocol depends on:
//   (1) round-trip — anything the JsonWriter emits parses back equal,
//       and parse → dump → parse is a fixpoint (doubles keep their
//       source lexeme);
//   (2) truncation — every strict prefix of a document either parses or
//       errors cleanly, never crashes or hangs;
//   (3) depth bomb — nesting beyond kMaxNestingDepth is an error, not a
//       stack overflow.
#include "support/json_reader.hpp"

#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace svlc::test {
namespace {

JsonValue parse_ok(const std::string& text) {
    JsonValue v;
    std::string error;
    EXPECT_TRUE(JsonReader::parse(text, v, error)) << text << ": " << error;
    return v;
}

std::string parse_err(const std::string& text) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonReader::parse(text, v, error)) << text;
    EXPECT_FALSE(error.empty()) << text;
    return error;
}

TEST(JsonReader, Scalars) {
    EXPECT_TRUE(parse_ok("null").is_null());
    EXPECT_EQ(parse_ok("true").bool_val(), true);
    EXPECT_EQ(parse_ok("false").bool_val(), false);
    EXPECT_EQ(parse_ok("42").int_val(), 42);
    EXPECT_EQ(parse_ok("-7").int_val(), -7);
    EXPECT_EQ(parse_ok("\"hi\"").str(), "hi");
    EXPECT_DOUBLE_EQ(parse_ok("2.5").double_val(), 2.5);
    EXPECT_DOUBLE_EQ(parse_ok("1e3").double_val(), 1000.0);
}

TEST(JsonReader, NumberIdentity) {
    // Integral lexemes keep their integer kind; "1" and "1.0" are
    // different values under operator== (integer identity matters for
    // byte-stable re-emission).
    EXPECT_EQ(parse_ok("1").kind(), JsonValue::Kind::Int);
    EXPECT_EQ(parse_ok("1.0").kind(), JsonValue::Kind::Double);
    EXPECT_FALSE(parse_ok("1") == parse_ok("1.0"));

    // Above int64 max → UInt, still exact.
    JsonValue big = parse_ok("18446744073709551615");
    EXPECT_EQ(big.kind(), JsonValue::Kind::UInt);
    EXPECT_EQ(big.uint_val(), UINT64_MAX);
    // Int and UInt cross-compare by numeric value.
    EXPECT_TRUE(parse_ok("7") == JsonValue(uint64_t{7}));

    // Beyond uint64 range degrades to double instead of erroring.
    EXPECT_EQ(parse_ok("18446744073709551616").kind(),
              JsonValue::Kind::Double);
}

TEST(JsonReader, StrictNumbers) {
    parse_err("01");    // leading zero
    parse_err("1.");    // bare decimal point
    parse_err(".5");    // missing integer part
    parse_err("+1");    // explicit plus
    parse_err("1e");    // empty exponent
    parse_err("- 1");   // space inside number
    parse_err("0x10");  // no hex
    parse_err("NaN");
    parse_err("Infinity");
}

TEST(JsonReader, Strings) {
    EXPECT_EQ(parse_ok(R"("a\nb\t\"\\")").str(), "a\nb\t\"\\");
    EXPECT_EQ(parse_ok(R"("A")").str(), "A");
    // Surrogate pair → 4-byte UTF-8.
    EXPECT_EQ(parse_ok(R"("😀")").str(), "\xF0\x9F\x98\x80");
    parse_err(R"("\uD83D")");     // lone high surrogate
    parse_err(R"("\uDE00")");     // lone low surrogate
    parse_err("\"raw\ncontrol\""); // unescaped control char
    parse_err("\"\xFF\"");         // invalid UTF-8
    parse_err("\"unterminated");
}

TEST(JsonReader, Containers) {
    JsonValue arr = parse_ok("[1, [2, 3], {\"k\": 4}]");
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr.items()[1].items()[1].int_val(), 3);
    EXPECT_EQ(arr.items()[2].get_uint("k"), 4u);

    parse_err("[1,]");       // trailing comma
    parse_err("{\"a\":1,}"); // trailing comma
    parse_err("[1 2]");      // missing comma
    parse_err("{'a':1}");    // single quotes
    parse_err("[1] x");      // trailing content
    parse_err("");           // empty document
}

TEST(JsonReader, DuplicateKeysLastWins) {
    JsonValue v = parse_ok(R"({"a": 1, "a": 2})");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->int_val(), 2);
    EXPECT_EQ(v.members().size(), 2u); // order preserved, nothing dropped
}

TEST(JsonReader, DepthBombErrorsNotCrash) {
    // Exactly at the cap: fine.
    std::string ok;
    for (int i = 0; i < JsonReader::kMaxNestingDepth; ++i)
        ok += '[';
    std::string ok_close(static_cast<size_t>(JsonReader::kMaxNestingDepth),
                         ']');
    parse_ok(ok + ok_close);

    // One past the cap: clean error.
    parse_err(ok + "[" + ok_close + "]");

    // A megabyte of '[' must error quickly, not smash the stack.
    parse_err(std::string(1 << 20, '['));
    // Same for objects.
    std::string objs;
    for (int i = 0; i < 100000; ++i)
        objs += "{\"a\":";
    parse_err(objs);
}

// --- round-trip properties -------------------------------------------------

/// Deterministic xorshift so failures reproduce.
struct Rng {
    uint64_t s = 0x9E3779B97F4A7C15ull;
    uint64_t next() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    uint64_t below(uint64_t n) { return next() % n; }
};

JsonValue random_value(Rng& rng, int depth) {
    switch (depth > 4 ? rng.below(6) : rng.below(8)) {
    case 0: return JsonValue();
    case 1: return JsonValue(rng.below(2) == 0);
    case 2: return JsonValue(static_cast<int64_t>(rng.next()));
    case 3: return JsonValue(rng.next());
    case 4:
        return JsonValue(static_cast<double>(rng.next() % 100000) / 256.0);
    case 5: {
        std::string s;
        size_t len = rng.below(12);
        for (size_t i = 0; i < len; ++i) {
            // Mix printable ASCII with characters that require escaping
            // and multi-byte UTF-8.
            switch (rng.below(5)) {
            case 0: s += static_cast<char>('a' + rng.below(26)); break;
            case 1: s += '"'; break;
            case 2: s += '\\'; break;
            case 3: s += '\n'; break;
            default: s += "\xC3\xA9"; break; // é
            }
        }
        return JsonValue(std::move(s));
    }
    case 6: {
        JsonValue arr = JsonValue::array();
        size_t n = rng.below(4);
        for (size_t i = 0; i < n; ++i)
            arr.push_back(random_value(rng, depth + 1));
        return arr;
    }
    default: {
        JsonValue obj = JsonValue::object();
        size_t n = rng.below(4);
        for (size_t i = 0; i < n; ++i)
            obj.set("k" + std::to_string(i), random_value(rng, depth + 1));
        return obj;
    }
    }
}

TEST(JsonReaderProperty, DumpParseRoundTrip) {
    Rng rng;
    for (int iter = 0; iter < 300; ++iter) {
        JsonValue v = random_value(rng, 0);
        for (int indent : {0, 2}) {
            std::string text = v.dump(indent);
            JsonValue back;
            std::string error;
            ASSERT_TRUE(JsonReader::parse(text, back, error))
                << text << ": " << error;
            EXPECT_TRUE(v == back) << text;
            // parse → dump is a fixpoint (doubles keep their lexeme).
            EXPECT_EQ(back.dump(indent), text);
        }
    }
}

TEST(JsonReaderProperty, WriterOutputParsesBack) {
    JsonWriter w(2);
    w.begin_object();
    w.kv("schema", "svlc-serve/v1");
    w.kv("count", uint64_t{18446744073709551615ull});
    w.kv("neg", int64_t{-42});
    w.kv("ratio", 0.125, 3);
    w.kv("text", "line1\nline2 \"quoted\" \x01 é");
    w.key("list").begin_array();
    w.value(true).value(false).null_value();
    w.end_array();
    w.end_object();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(JsonReader::parse(w.str(), v, error)) << error;
    EXPECT_EQ(v.get_string("schema"), "svlc-serve/v1");
    EXPECT_EQ(v.get_uint("count"), UINT64_MAX);
    EXPECT_EQ(v.find("neg")->int_val(), -42);
    EXPECT_DOUBLE_EQ(v.find("ratio")->double_val(), 0.125);
    EXPECT_EQ(v.get_string("text"), "line1\nline2 \"quoted\" \x01 é");
    ASSERT_EQ(v.find("list")->size(), 3u);
    EXPECT_TRUE(v.find("list")->items()[2].is_null());
}

TEST(JsonReaderProperty, TruncationNeverCrashes) {
    Rng rng;
    std::string docs[] = {
        parse_ok(R"({"a":[1,2.5,"x\n",{"b":null}],"c":true})").dump(),
        parse_ok(R"([18446744073709551615,-3,1e10,"😀"])").dump(),
        std::string(random_value(rng, 0).dump(2)),
    };
    for (const std::string& doc : docs) {
        for (size_t len = 0; len < doc.size(); ++len) {
            JsonValue v;
            std::string error;
            // Every prefix must return — usually an error, occasionally
            // a valid shorter document (e.g. "12" from "123"). Either
            // way: no crash, no hang, and errors carry a message.
            if (!JsonReader::parse(doc.substr(0, len), v, error)) {
                EXPECT_FALSE(error.empty());
            }
        }
    }
}

} // namespace
} // namespace svlc::test
