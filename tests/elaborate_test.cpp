// Elaboration + well-formedness: structural rules from paper §2.3 —
// no combinational loops, no inferred latches, deterministic single
// drivers, and label sanity.
#include "sim/simulator.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace svlc::test {
namespace {

TEST(Elaborate, DetectsCombLoop) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com {T} x;
  wire com {T} y;
  assign x = y | a;
  assign y = x;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::CombLoop)) << c.errors();
}

TEST(Elaborate, RegistersBreakCycles) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com {T} x;
  reg seq {T} r;
  assign x = r | a;
  always @(seq) begin
    r <= x;
  end
endmodule
)");
    EXPECT_TRUE(c.ok()) << c.errors();
}

TEST(Elaborate, NextIntroducesOrderingEdge) {
    // Reading next(r) in another process is fine (acyclic)...
    auto c = compile(R"(
module m(input com {T} a);
  reg seq {T} r;
  reg seq {T} s;
  always @(seq) begin
    r <= a;
  end
  always @(seq) begin
    s <= next(r);
  end
endmodule
)");
    EXPECT_TRUE(c.ok()) << c.errors();
}

TEST(Elaborate, NextSelfCycleRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  reg seq {T} r;
  always @(seq) begin
    r <= ~next(r);
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::CombLoop)) << c.errors();
}

TEST(Elaborate, NextCrossCycleRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  reg seq {T} r;
  reg seq {T} s;
  always @(seq) begin
    r <= next(s);
  end
  always @(seq) begin
    s <= next(r);
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::CombLoop)) << c.errors();
}

TEST(Elaborate, InferredLatchRejected) {
    auto c = compile(R"(
module m(input com {T} sel, input com [7:0] {T} a);
  wire com [7:0] {T} out;
  always @(*) begin
    if (sel) out = a;
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::InferredLatch)) << c.errors();
}

TEST(Elaborate, CompleteIfElseIsNotALatch) {
    auto c = compile(R"(
module m(input com {T} sel, input com [7:0] {T} a);
  wire com [7:0] {T} out;
  always @(*) begin
    if (sel) out = a;
    else out = 8'h0;
  end
endmodule
)");
    EXPECT_TRUE(c.ok()) << c.errors();
}

TEST(Elaborate, ReadBeforeWriteInCombRejected) {
    auto c = compile(R"(
module m(input com [7:0] {T} a);
  wire com [7:0] {T} x;
  wire com [7:0] {T} y;
  always @(*) begin
    y = x + 8'h1;
    x = a;
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::InferredLatch)) << c.errors();
}

TEST(Elaborate, IntraProcessDefBeforeUseAccepted) {
    auto c = compile(R"(
module m(input com [7:0] {T} a);
  wire com [7:0] {T} x;
  wire com [7:0] {T} y;
  always @(*) begin
    x = a;
    y = x + 8'h1;
  end
endmodule
)");
    EXPECT_TRUE(c.ok()) << c.errors();
}

TEST(Elaborate, MultipleDriversRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com {T} x;
  assign x = a;
  assign x = ~a;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::MultipleDrivers)) << c.errors();
}

TEST(Elaborate, SeqNetInCombContextRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  reg seq {T} r;
  assign r = a;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::SeqAssignToCom)) << c.errors();
}

TEST(Elaborate, ComNetInSeqContextRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com {T} w;
  always @(seq) begin
    w <= a;
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::ComAssignToSeq)) << c.errors();
}

TEST(Elaborate, UndrivenComReadRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com {T} w;
  reg seq {T} r;
  always @(seq) begin
    r <= w;
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::InferredLatch)) << c.errors();
}

TEST(Elaborate, SelfReferentialLabelRejected) {
    auto c = compile(policy_header() + R"(
module m(input com {T} a);
  reg seq {mode_to_lb(r)} r;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::SelfReferentialLabel))
        << c.errors();
}

TEST(Elaborate, LabelDependencyCycleRejected) {
    auto c = compile(policy_header() + R"(
module m(input com {T} a);
  reg seq {mode_to_lb(s)} r;
  reg seq {mode_to_lb(r)} s;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::LabelDependencyCycle))
        << c.errors();
}

TEST(Elaborate, LabelArgWidthMismatchRejected) {
    auto c = compile(policy_header() + R"(
module m(input com {T} a);
  reg seq [3:0] {T} wide;
  reg seq {mode_to_lb(wide)} r;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::WidthMismatch)) << c.errors();
}

TEST(Elaborate, UnknownLevelAndFunctionRejected) {
    auto c = compile(R"(
lattice { level T; level U; flow T -> U; }
module m(input com {X} a);
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::UnknownLevel)) << c.errors();

    auto c2 = compile(R"(
lattice { level T; level U; flow T -> U; }
module m(input com {nosuch(a)} a);
endmodule
)");
    EXPECT_FALSE(c2.ok());
    EXPECT_TRUE(c2.diags->has_code(DiagCode::UnknownFunction)) << c2.errors();
}

TEST(Elaborate, ParameterOverrideChangesWidths) {
    auto c = compile(R"(
module child #(parameter W = 4)(input com [W-1:0] {T} a,
                                output com [W-1:0] {T} y);
  assign y = ~a;
endmodule
module top(input com [7:0] {T} x, output com [7:0] {T} z);
  child #(.W(8)) u0(.a(x), .y(z));
endmodule
)", "top");
    ASSERT_TRUE(c.ok()) << c.errors();
    hir::NetId port = c.design->find_net("u0.a");
    ASSERT_NE(port, hir::kInvalidNet);
    EXPECT_EQ(c.design->net(port).width, 8u);
}

TEST(Elaborate, UnconnectedInputPortRejected) {
    auto c = compile(R"(
module child(input com {T} a, input com {T} b, output com {T} y);
  assign y = a;
endmodule
module top(input com {T} x, output com {T} z);
  child u0(.a(x), .y(z));
endmodule
)", "top");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::PortMismatch)) << c.errors();
}

TEST(Elaborate, UnknownPortRejected) {
    auto c = compile(R"(
module child(input com {T} a, output com {T} y);
  assign y = a;
endmodule
module top(input com {T} x, output com {T} z);
  child u0(.a(x), .nope(z), .y(z));
endmodule
)", "top");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::PortMismatch)) << c.errors();
}

TEST(Elaborate, ArrayMustBeSequential) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com [7:0] {T} arr[0:3];
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::ArrayMisuse)) << c.errors();
}

TEST(Elaborate, ArrayUsedWithoutIndexRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  reg seq [7:0] {T} arr[0:3];
  reg seq [7:0] {T} r;
  always @(seq) begin
    r <= arr;
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::ArrayMisuse)) << c.errors();
}

TEST(Elaborate, ConstantFoldingInWidths) {
    auto c = compile(R"(
module m(input com {T} a);
  localparam W = 4 * 2;
  reg seq [W-1:0] {T} r;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    EXPECT_EQ(c.design->net(c.design->find_net("r")).width, 8u);
}

TEST(Elaborate, CaseLowersToIfChain) {
    auto c = compile(R"(
module m(input com [1:0] {T} sel);
  wire com [3:0] {T} out;
  always @(*) begin
    case (sel)
      2'b00: out = 4'h1;
      2'b01, 2'b10: out = 4'h2;
      default: out = 4'h7;
    endcase
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator s(*c.design);
    s.set_input("sel", 0);
    s.settle();
    EXPECT_EQ(s.get("out").value(), 1u);
    s.set_input("sel", 2);
    s.settle();
    EXPECT_EQ(s.get("out").value(), 2u);
    s.set_input("sel", 3);
    s.settle();
    EXPECT_EQ(s.get("out").value(), 7u);
}

TEST(Elaborate, CaseWithoutDefaultIsLatch) {
    auto c = compile(R"(
module m(input com [1:0] {T} sel);
  wire com [3:0] {T} out;
  always @(*) begin
    case (sel)
      2'b00: out = 4'h1;
      2'b01: out = 4'h2;
    endcase
  end
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::InferredLatch)) << c.errors();
}

TEST(Elaborate, DuplicateNetRejected) {
    auto c = compile(R"(
module m(input com {T} a);
  wire com {T} x;
  wire com {T} x;
endmodule
)");
    EXPECT_FALSE(c.ok());
    EXPECT_TRUE(c.diags->has_code(DiagCode::DuplicateDefinition)) << c.errors();
}

TEST(Elaborate, DefaultPolicyIsTwoPointIntegrity) {
    auto c = compile(R"(
module m(input com {T} a);
  reg seq {U} r;
  always @(seq) begin
    r <= a;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    EXPECT_EQ(c.design->policy.lattice().size(), 2u);
}

TEST(Elaborate, TopSelectionPrefersUninstantiated) {
    auto c = compile(R"(
module inner(input com {T} a, output com {T} y);
  assign y = a;
endmodule
module outer(input com {T} x, output com {T} z);
  inner u0(.a(x), .y(z));
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    EXPECT_EQ(c.design->top_name, "outer");
}

TEST(Elaborate, SimSchedulesHierarchyAcrossPortBoundaries) {
    auto c = compile(R"(
module stage(input com [7:0] {T} d, output com [7:0] {T} q_out);
  reg seq [7:0] {T} q;
  assign q_out = q;
  always @(seq) begin
    q <= d;
  end
endmodule
module pipe2(input com [7:0] {T} in, output com [7:0] {T} out);
  wire com [7:0] {T} mid;
  stage s0(.d(in), .q_out(mid));
  stage s1(.d(mid), .q_out(out));
endmodule
)", "pipe2");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator s(*c.design);
    s.set_input("in", 0x42);
    s.step();
    s.step();
    s.settle();
    EXPECT_EQ(s.get("out").value(), 0x42u);
}

} // namespace
} // namespace svlc::test
