// End-to-end tests for the distributed coordinator/worker fleet
// (src/dist): an in-process Coordinator on its own thread, real Workers
// and hand-rolled protocol clients over the Unix socket. Covers the
// acceptance bar of the subsystem:
//   * a coordinator + worker fleet produces a verdict report
//     byte-identical to a single-process `svlc batch` over the same
//     manifest, and the merged store warm-skips a later cold batch,
//   * a worker that dies holding a lease never loses the job — the
//     lease is reclaimed and re-issued,
//   * a stolen job that completes twice is reported exactly once
//     (first result wins, the duplicate is acknowledged and dropped),
//   * the delta-sync handshake transfers only entries the coordinator
//     lacks.
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"

#include "driver/driver.hpp"
#include "incr/fingerprint.hpp"
#include "incr/store.hpp"
#include "serve/client.hpp"
#include "support/fsutil.hpp"
#include "support/hash.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace svlc::test {
namespace {

namespace fs = std::filesystem;
using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::Worker;
using dist::WorkerOptions;
using driver::BatchReport;
using driver::JobSpec;
using serve::Client;
using serve::RpcMessage;

const char* kSecureSrc = R"(
lattice { level T; level U; flow T -> U; }
module ok(input com {T} a, output com {T} b);
  assign b = a;
endmodule
)";

const char* kRejectedSrc = R"(
lattice { level T; level U; flow T -> U; }
module bad(input com {U} dirty);
  reg seq {T} creg;
  always @(seq) begin
    creg <= dirty;
  end
endmodule
)";

// Hits the enumeration path, so workers actually produce Proven
// entailments to delta-sync back.
const char* kModeSwitchSrc = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} rst,
         input com [15:0] {T} decode_out,
         input com [15:0] {U} epc_in);
  wire com {T} mode_switch;
  reg seq [15:0] {U} epc;
  reg seq {T} mode;
  reg seq [15:0] {mode_to_lb(mode)} pc;
  assign mode_switch = decode_out[4];
  always @(seq) begin
    if (rst) pc <= 16'b0;
    else if (mode_switch && (next(mode) == 1'b0)) pc <= 16'h8000;
    else if (mode_switch) pc <= epc;
  end
  always @(seq) begin
    if (mode_switch) mode <= ~mode;
  end
  always @(seq) begin
    epc <= epc_in;
  end
endmodule
)";

std::string unique_socket(const char* tag) {
    static std::atomic<int> counter{0};
    return (fs::temp_directory_path() /
            ("svlc_dist_test_" + std::to_string(::getpid()) + "_" + tag +
             "_" + std::to_string(counter++) + ".sock"))
        .string();
}

std::vector<JobSpec> inline_jobs() {
    std::vector<JobSpec> jobs;
    jobs.push_back({"job:secure", "", kSecureSrc, "", 0});
    jobs.push_back({"job:rejected", "", kRejectedSrc, "", 0});
    jobs.push_back({"job:mode", "", kModeSwitchSrc, "", 0});
    return jobs;
}

/// Coordinator on a background thread; the report is collected by join().
struct TestCoordinator {
    Coordinator coord;
    std::thread thread;
    BatchReport report;

    TestCoordinator(CoordinatorOptions opts, std::vector<JobSpec> jobs)
        : coord(std::move(opts), std::move(jobs)) {}
    ~TestCoordinator() { join(); }

    bool start() {
        std::string error;
        if (!coord.start(error)) {
            ADD_FAILURE() << "coordinator start: " << error;
            return false;
        }
        thread = std::thread([this] { report = coord.run(); });
        return true;
    }
    void join() {
        if (thread.joinable())
            thread.join();
    }
};

class DistTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               (std::string("svlc_dist_test_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::error_code ec;
        fs::remove_all(dir_, ec);
        fs::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string sub(const char* name) const {
        return (dir_ / name).string();
    }
    fs::path dir_;
};

JsonValue call_ok(Client& client, const std::string& method,
                  const JsonValue& params) {
    RpcMessage response;
    std::string error;
    EXPECT_TRUE(client.call(method, params, response, error))
        << method << ": " << error;
    EXPECT_TRUE(response.has_result)
        << method << " errored: " << response.error_message;
    return response.result;
}

uint64_t register_worker(Client& client, const char* name) {
    JsonValue params = JsonValue::object();
    params.set("schema", JsonValue(dist::kDistSchema));
    params.set("version", JsonValue(incr::kToolVersion));
    params.set("worker", JsonValue(name));
    JsonValue result = call_ok(client, "register", params);
    uint64_t id = result.get_uint("worker_id");
    EXPECT_GT(id, 0u);
    return id;
}

JsonValue lease_one(Client& client, uint64_t worker_id) {
    JsonValue params = JsonValue::object();
    params.set("worker_id", JsonValue(worker_id));
    return call_ok(client, "lease", params);
}

// --- protocol helpers ------------------------------------------------------

TEST(DistProtocol, HexRoundTrip) {
    std::string bytes;
    for (int i = 0; i < 256; ++i)
        bytes += static_cast<char>(i);
    std::string hex = dist::hex_encode(bytes);
    EXPECT_EQ(hex.size(), 512u);
    std::string back;
    ASSERT_TRUE(dist::hex_decode(hex, back));
    EXPECT_EQ(back, bytes);

    EXPECT_TRUE(dist::hex_decode("", back));
    EXPECT_TRUE(back.empty());
    EXPECT_FALSE(dist::hex_decode("abc", back));  // odd length
    EXPECT_FALSE(dist::hex_decode("zz", back));   // not hex
    ASSERT_TRUE(dist::hex_decode("DEADbeef", back)); // case-insensitive
    EXPECT_EQ(dist::hex_encode(back), "deadbeef");
}

TEST(DistProtocol, EntailKeyHashIsStable) {
    std::string h = dist::entail_key_hash("some canonical key\nbytes");
    EXPECT_EQ(h.size(), 16u);
    EXPECT_EQ(h, dist::entail_key_hash("some canonical key\nbytes"));
    EXPECT_NE(h, dist::entail_key_hash("some other key"));
}

// --- end-to-end fleet ------------------------------------------------------

TEST_F(DistTest, FleetMatchesSingleProcessAndMergedStoreWarmSkips) {
    std::vector<JobSpec> jobs = inline_jobs();

    CoordinatorOptions copts;
    copts.socket_path = unique_socket("e2e");
    copts.store_dir = sub("coord-store");
    TestCoordinator tc(copts, jobs);
    ASSERT_TRUE(tc.start());

    auto run_worker = [&](const char* name, const char* store) {
        WorkerOptions wopts;
        wopts.socket_path = copts.socket_path;
        wopts.store_dir = sub(store);
        wopts.name = name;
        wopts.retry.attempts = 40;
        wopts.retry.backoff_ms = 25;
        Worker worker(std::move(wopts));
        std::string error;
        EXPECT_TRUE(worker.run(error)) << name << ": " << error;
    };
    std::thread w1(run_worker, "w1", "w1-store");
    std::thread w2(run_worker, "w2", "w2-store");
    w1.join();
    w2.join();
    tc.join();

    ASSERT_EQ(tc.report.results.size(), jobs.size());
    EXPECT_TRUE(tc.report.all_ran());
    EXPECT_EQ(tc.coord.stats().workers_registered, 2u);

    // Byte-identical verdict report and summary vs a single-process run.
    // The summary's trailing solver line is telemetry — workers replay
    // obligations from their local stores, so query counts legitimately
    // differ from a store-less run — and is excluded from the compare.
    driver::DriverOptions dopts;
    dopts.jobs = 1;
    BatchReport solo = driver::VerificationDriver(dopts).run(jobs);
    EXPECT_EQ(tc.report.to_json(false), solo.to_json(false));
    EXPECT_EQ(tc.report.summary().substr(0,
                                         tc.report.summary().find("solver:")),
              solo.summary().substr(0, solo.summary().find("solver:")));

    // The coordinator's store is the merged artifact: a cold batch over
    // it answers every job by fingerprint without verifying anything.
    driver::DriverOptions warm_opts;
    warm_opts.store_dir = copts.store_dir;
    BatchReport warm = driver::VerificationDriver(warm_opts).run(jobs);
    EXPECT_EQ(warm.skipped_count(), jobs.size());
    EXPECT_EQ(warm.to_json(false), solo.to_json(false));
    // And the delta-synced Proven entailments made it to disk.
    EXPECT_GT(warm.store.entail_loaded, 0u);

    // Obligation records round-tripped the sync protocol: the workers'
    // per-obligation verdicts are now in the coordinator's store, so an
    // *edited* job (whole-job fingerprint miss) replays its unchanged
    // obligations from the merged store.
    incr::ArtifactStore merged({copts.store_dir, 1024});
    std::string merr;
    ASSERT_TRUE(merged.open(merr)) << merr;
    EXPECT_GT(merged.list_obligations().size(), 0u);
}

TEST_F(DistTest, WorkerDeathReclaimsLeaseAndJobStillCompletes) {
    std::vector<JobSpec> jobs = inline_jobs();

    CoordinatorOptions copts;
    copts.socket_path = unique_socket("death");
    copts.backoff_ms = 10; // re-queue fast so the test stays quick
    TestCoordinator tc(copts, jobs);
    ASSERT_TRUE(tc.start());

    // A client that registers, takes a lease, and dies without ever
    // sending the result.
    {
        std::string error;
        net::RetryOptions retry;
        retry.attempts = 40;
        retry.backoff_ms = 25;
        auto doomed = Client::connect(copts.socket_path, retry, error);
        ASSERT_TRUE(doomed.has_value()) << error;
        uint64_t id = register_worker(*doomed, "doomed");
        JsonValue lease = lease_one(*doomed, id);
        ASSERT_EQ(lease.get_string("state"), "job");
    } // connection closes here — the coordinator must reclaim the lease

    WorkerOptions wopts;
    wopts.socket_path = copts.socket_path;
    wopts.name = "survivor";
    Worker worker(std::move(wopts));
    std::string error;
    ASSERT_TRUE(worker.run(error)) << error;
    tc.join();

    EXPECT_TRUE(tc.report.all_ran());
    ASSERT_EQ(tc.report.results.size(), jobs.size());
    EXPECT_GE(tc.coord.stats().leases_reclaimed, 1u);

    BatchReport solo = driver::VerificationDriver().run(jobs);
    EXPECT_EQ(tc.report.to_json(false), solo.to_json(false));
}

TEST_F(DistTest, StolenJobReportsOnceFirstResultWins) {
    // One job, two hand-rolled workers: A leases it, B finds nothing
    // pending and steals a duplicate lease, B reports first (wins), A's
    // late result is acknowledged as a duplicate and dropped.
    std::vector<JobSpec> jobs;
    jobs.push_back({"job:only", "", kSecureSrc, "", 0});

    CoordinatorOptions copts;
    copts.socket_path = unique_socket("steal");
    TestCoordinator tc(copts, jobs);
    ASSERT_TRUE(tc.start());

    std::string error;
    net::RetryOptions retry;
    retry.attempts = 40;
    retry.backoff_ms = 25;
    auto a = Client::connect(copts.socket_path, retry, error);
    ASSERT_TRUE(a.has_value()) << error;
    auto b = Client::connect(copts.socket_path, retry, error);
    ASSERT_TRUE(b.has_value()) << error;
    uint64_t a_id = register_worker(*a, "a");
    uint64_t b_id = register_worker(*b, "b");

    JsonValue a_lease = lease_one(*a, a_id);
    ASSERT_EQ(a_lease.get_string("state"), "job");
    JsonValue b_lease = lease_one(*b, b_id);
    ASSERT_EQ(b_lease.get_string("state"), "job") << "expected a steal";
    EXPECT_EQ(b_lease.get_string("name"), a_lease.get_string("name"));
    EXPECT_NE(b_lease.get_uint("lease"), a_lease.get_uint("lease"));
    EXPECT_EQ(tc.coord.stats().steals, 1u);

    incr::StoredVerdict v;
    v.secure = true;
    v.obligations = 1;
    std::string payload =
        dist::hex_encode(incr::encode_stored_verdict(v));
    auto result_params = [&](uint64_t worker, const JsonValue& lease) {
        JsonValue p = JsonValue::object();
        p.set("worker_id", JsonValue(worker));
        p.set("lease", JsonValue(lease.get_uint("lease")));
        p.set("name", JsonValue(lease.get_string("name")));
        p.set("fingerprint", JsonValue(lease.get_string("fingerprint")));
        p.set("status", JsonValue("secure"));
        p.set("verdict", JsonValue(payload));
        return p;
    };

    JsonValue first = call_ok(*b, "result", result_params(b_id, b_lease));
    EXPECT_TRUE(first.get_bool("accepted"));
    EXPECT_FALSE(first.get_bool("duplicate"));

    JsonValue second = call_ok(*a, "result", result_params(a_id, a_lease));
    EXPECT_FALSE(second.get_bool("accepted"));
    EXPECT_TRUE(second.get_bool("duplicate"));

    EXPECT_EQ(lease_one(*a, a_id).get_string("state"), "done");
    a.reset();
    b.reset();
    tc.join();

    ASSERT_EQ(tc.report.results.size(), 1u);
    EXPECT_EQ(tc.report.results[0].status, driver::JobStatus::Secure);
    EXPECT_EQ(tc.coord.stats().duplicate_results, 1u);
    EXPECT_EQ(tc.coord.stats().results_accepted, 1u);
}

TEST_F(DistTest, DeltaSyncTransfersOnlyMissingEntries) {
    // Pre-populate the coordinator's store with one verdict and one
    // entailment; the peer offers those plus one new entry of each kind.
    std::string fp_known = sha256_hex("known job");
    std::string fp_new = sha256_hex("new job");
    std::string key_known = "known entail key";
    std::string key_new = "new entail key";
    {
        incr::ArtifactStore seed({sub("coord-store"), 1024});
        std::string error;
        ASSERT_TRUE(seed.open(error)) << error;
        incr::StoredVerdict v;
        v.secure = true;
        ASSERT_TRUE(seed.store_verdict(fp_known, v));
        solver::EntailCache cache;
        cache.insert(key_known, {5});
        ASSERT_EQ(seed.flush_entail(cache), 1u);
    }

    CoordinatorOptions copts;
    copts.socket_path = unique_socket("sync");
    copts.store_dir = sub("coord-store");
    // One real job keeps the coordinator serving while the handshake
    // runs (a fully-decided manifest with no connections drains
    // immediately).
    std::vector<JobSpec> jobs;
    jobs.push_back({"job:keepalive", "", kSecureSrc, "", 0});
    TestCoordinator tc(copts, jobs);
    ASSERT_TRUE(tc.start());

    std::string error;
    net::RetryOptions retry;
    retry.attempts = 40;
    retry.backoff_ms = 25;
    auto client = Client::connect(copts.socket_path, retry, error);
    ASSERT_TRUE(client.has_value()) << error;
    uint64_t id = register_worker(*client, "syncer");

    JsonValue lease = lease_one(*client, id);
    ASSERT_EQ(lease.get_string("state"), "job");
    {
        incr::StoredVerdict keep;
        keep.secure = true;
        JsonValue p = JsonValue::object();
        p.set("worker_id", JsonValue(id));
        p.set("lease", JsonValue(lease.get_uint("lease")));
        p.set("name", JsonValue(lease.get_string("name")));
        p.set("fingerprint", JsonValue(lease.get_string("fingerprint")));
        p.set("status", JsonValue("secure"));
        p.set("verdict", JsonValue(dist::hex_encode(
                             incr::encode_stored_verdict(keep))));
        EXPECT_TRUE(call_ok(*client, "result", p).get_bool("accepted"));
    }

    JsonValue sync = JsonValue::object();
    sync.set("worker_id", JsonValue(id));
    JsonValue fps = JsonValue::array();
    fps.push_back(JsonValue(fp_known));
    fps.push_back(JsonValue(fp_new));
    sync.set("verdicts", std::move(fps));
    JsonValue hashes = JsonValue::array();
    hashes.push_back(JsonValue(dist::entail_key_hash(key_known)));
    hashes.push_back(JsonValue(dist::entail_key_hash(key_new)));
    sync.set("entail", std::move(hashes));
    JsonValue want = call_ok(*client, "sync", sync);

    const JsonValue* wv = want.find("want_verdicts");
    ASSERT_NE(wv, nullptr);
    ASSERT_EQ(wv->items().size(), 1u);
    EXPECT_EQ(wv->items()[0].str(), fp_new);
    const JsonValue* we = want.find("want_entail");
    ASSERT_NE(we, nullptr);
    ASSERT_EQ(we->items().size(), 1u);
    EXPECT_EQ(we->items()[0].str(), dist::entail_key_hash(key_new));

    // Push exactly what was asked for; corrupt extras are counted, not
    // fatal.
    incr::StoredVerdict v;
    v.secure = false;
    v.obligations = 4;
    v.failed = 1;
    JsonValue push = JsonValue::object();
    push.set("worker_id", JsonValue(id));
    JsonValue verdicts = JsonValue::array();
    JsonValue good = JsonValue::object();
    good.set("fp", JsonValue(fp_new));
    good.set("data",
             JsonValue(dist::hex_encode(incr::encode_stored_verdict(v))));
    verdicts.push_back(std::move(good));
    JsonValue corrupt = JsonValue::object();
    corrupt.set("fp", JsonValue(sha256_hex("corrupt")));
    corrupt.set("data", JsonValue("definitely-not-hex"));
    verdicts.push_back(std::move(corrupt));
    push.set("verdicts", std::move(verdicts));
    JsonValue entail = JsonValue::array();
    JsonValue entry = JsonValue::object();
    entry.set("key", JsonValue(dist::hex_encode(key_new)));
    entry.set("candidates", JsonValue(uint64_t{17}));
    entail.push_back(std::move(entry));
    push.set("entail", std::move(entail));
    JsonValue pushed = call_ok(*client, "push", push);
    EXPECT_EQ(pushed.get_uint("verdicts_merged"), 1u);
    EXPECT_EQ(pushed.get_uint("entail_merged"), 1u);
    EXPECT_EQ(pushed.get_uint("corrupt_skipped"), 1u);

    // A second handshake confirms the coordinator now has everything.
    JsonValue again = call_ok(*client, "sync", sync);
    EXPECT_EQ(again.find("want_verdicts")->items().size(), 0u);
    EXPECT_EQ(again.find("want_entail")->items().size(), 0u);

    client.reset();
    tc.join();

    // Both pushed entries landed in the on-disk store.
    incr::ArtifactStore merged({sub("coord-store"), 1024});
    ASSERT_TRUE(merged.open(error)) << error;
    EXPECT_TRUE(merged.has_verdict(fp_new));
    solver::EntailCache warm;
    ASSERT_EQ(merged.load_entail(warm), 2u);
    auto got = warm.lookup(key_new);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->candidates, 17u);
}

TEST_F(DistTest, VersionMismatchIsRefusedAtRegister) {
    CoordinatorOptions copts;
    copts.socket_path = unique_socket("version");
    TestCoordinator tc(copts, inline_jobs());
    ASSERT_TRUE(tc.start());

    std::string error;
    net::RetryOptions retry;
    retry.attempts = 40;
    retry.backoff_ms = 25;
    auto client = Client::connect(copts.socket_path, retry, error);
    ASSERT_TRUE(client.has_value()) << error;

    JsonValue params = JsonValue::object();
    params.set("schema", JsonValue(dist::kDistSchema));
    params.set("version", JsonValue("svlc-0.0.1"));
    params.set("worker", JsonValue("old"));
    RpcMessage response;
    ASSERT_TRUE(client->call("register", params, response, error)) << error;
    EXPECT_TRUE(response.has_error);
    EXPECT_NE(response.error_message.find("version"), std::string::npos);

    client.reset();
    tc.coord.request_stop();
    tc.join();
    // Stopped before any work: jobs report as infrastructure errors,
    // never silently vanish.
    ASSERT_EQ(tc.report.results.size(), 3u);
    for (const auto& r : tc.report.results)
        EXPECT_EQ(r.status, driver::JobStatus::Error);
}

} // namespace
} // namespace svlc::test
