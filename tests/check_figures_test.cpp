// End-to-end reproduction of the paper's running examples (Figures 1-4):
//  Fig. 1 — simple static labels: U -> T rejected, T -> T accepted.
//  Fig. 2 — label propagation: accepted by SecVerilogLC (via next-value
//           equations), rejected by classic SecVerilog.
//  Fig. 3 — implicit downgrading: rejected by SecVerilogLC; classic
//           SecVerilog type-checks it (the vulnerability dynamic clearing
//           has to patch).
//  Fig. 4 — PC mode-switch logic with the `next` operator: accepted by
//           SecVerilogLC; unsupported by classic SecVerilog.
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace svlc::test {
namespace {

using check::CheckerMode;
using check::CheckOptions;

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

const char* kFig1Illegal = R"(
lattice { level T; level U; flow T -> U; }
module fig1(input com {U} in_u);
  reg seq [31:0] {T} creg;
  reg seq [31:0] {U} untr;
  always @(seq) begin
    untr <= {32'b0} ;
    creg <= untr; // not allowed: U -> T
  end
endmodule
)";

TEST(Fig1, UntrustedToTrustedRejected) {
    Compiled c;
    auto result = check_source(kFig1Illegal, c);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(c.diags->has_code(DiagCode::IllegalFlowSeq))
        << c.errors();
}

const char* kFig1Legal = R"(
lattice { level T; level U; flow T -> U; }
module fig1(input com {T} in_t);
  reg seq [31:0] {T} creg;
  reg seq [31:0] {T} trst;
  always @(seq) begin
    trst <= {24'b0, 8'hab};
    creg <= trst; // allowed: T -> T
  end
endmodule
)";

TEST(Fig1, TrustedToTrustedAccepted) {
    Compiled c;
    auto result = check_source(kFig1Legal, c);
    EXPECT_TRUE(result.ok) << c.errors();
    EXPECT_EQ(result.failed, 0u);
}

// ---------------------------------------------------------------------------
// Figure 2 — label propagation (pipeline-register pattern)
// ---------------------------------------------------------------------------

const char* kFig2 = R"(
lattice { level T; level U; flow T -> U; }
function f(x:1) { 0 -> T; default -> U; }
module fig2(input com {T} in_nl, input com [7:0] {f(next_lab)} in_nd);
  reg seq {T} lab;
  wire com {T} next_lab;
  reg seq [7:0] {f(lab)} data;
  wire com [7:0] {f(next_lab)} next_data;
  assign next_lab = in_nl;
  assign next_data = in_nd;
  always @(seq) begin
    data <= next_data; // value and label propagate together
    lab <= next_lab;
  end
endmodule
)";

TEST(Fig2, AcceptedBySecVerilogLC) {
    Compiled c;
    auto result = check_source(kFig2, c);
    EXPECT_TRUE(result.ok) << c.errors();
}

TEST(Fig2, RejectedByClassicSecVerilog) {
    CheckOptions opts;
    opts.mode = CheckerMode::ClassicSecVerilog;
    Compiled c;
    auto result = check_source(kFig2, c, opts);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(c.diags->has_code(DiagCode::IllegalFlowSeq)) << c.errors();
}

// ---------------------------------------------------------------------------
// Figure 3 — implicit downgrading
// ---------------------------------------------------------------------------

const char* kFig3 = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module fig3(input com {T} in_v);
  reg seq {T} v;
  reg seq [7:0] {T} trusted;
  reg seq [7:0] {U} untrusted;
  reg seq [7:0] {mode_to_lb(v)} shared;
  always @(seq) begin
    v <= in_v;
    if (v == 1'b1) shared <= untrusted;
    else           trusted <= shared;
  end
endmodule
)";

TEST(Fig3, ImplicitDowngradingRejectedByLC) {
    Compiled c;
    auto result = check_source(kFig3, c);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
    // The violation is the write of untrusted data into `shared` while
    // its next-cycle label may become T.
    EXPECT_TRUE(c.diags->has_code(DiagCode::IllegalFlowSeq)) << c.errors();
    bool found_refuted = false;
    for (const auto& ob : result.obligations)
        if (!ob.result.proven() &&
            ob.result.status == solver::EntailStatus::Refuted)
            found_refuted = true;
    EXPECT_TRUE(found_refuted)
        << "expected a concrete counterexample for the implicit downgrade";
}

TEST(Fig3, ClassicSecVerilogTypeChecksTheVulnerableCode) {
    // The prior system accepts this code (checking against current-cycle
    // labels only) — this is exactly the implicit-downgrading hazard that
    // dynamic clearing must patch behind the designer's back.
    CheckOptions opts;
    opts.mode = CheckerMode::ClassicSecVerilog;
    Compiled c;
    auto result = check_source(kFig3, c, opts);
    EXPECT_TRUE(result.ok) << c.errors();
}

TEST(Fig3, HoldObligationAblation) {
    // Turning hold obligations off must not change Fig. 3: the write
    // obligation alone catches this bug.
    CheckOptions opts;
    opts.hold_obligations = false;
    Compiled c;
    auto result = check_source(kFig3, c, opts);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
}

// ---------------------------------------------------------------------------
// Figure 4 — PC update during mode switches
// ---------------------------------------------------------------------------

const char* kFig4 = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module fig4(input com {T} rst,
            input com [15:0] {T} decode_out,
            input com [15:0] {U} epc_in);
  wire com {T} mode_switch;
  reg seq [15:0] {U} epc;
  reg seq {T} mode;
  reg seq [15:0] {mode_to_lb(mode)} pc;
  assign mode_switch = decode_out[4];
  always @(seq) begin
    if (rst) pc <= 16'b0;
    else if (mode_switch && (next(mode) == 1'b0))
      pc <= 16'h8000; // switch to kernel mode: trusted constant
    else if (mode_switch)
      pc <= epc;      // return to user mode: restore saved pc
  end
  always @(seq) begin
    if (mode_switch) mode <= ~mode;
  end
  always @(seq) begin
    epc <= epc_in;
  end
endmodule
)";

TEST(Fig4, ModeSwitchPCAcceptedByLC) {
    Compiled c;
    auto result = check_source(kFig4, c);
    EXPECT_TRUE(result.ok) << c.errors();
    // Sanity: the interesting obligation (pc <= epc) was not discharged
    // syntactically — it needs the cycle-aware reasoning.
    bool used_enumeration = false;
    for (const auto& ob : result.obligations)
        if (ob.kind == check::ObligationKind::SeqAssign && !ob.result.syntactic)
            used_enumeration = true;
    EXPECT_TRUE(used_enumeration);
}

TEST(Fig4, ClassicSecVerilogCannotExpressIt) {
    CheckOptions opts;
    opts.mode = CheckerMode::ClassicSecVerilog;
    Compiled c;
    auto result = check_source(kFig4, c, opts);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(c.diags->has_code(DiagCode::Unsupported)) << c.errors();
}

TEST(Fig4, EquationAblationBreaksTheProof) {
    // Without next-value equations the solver cannot relate mode' to the
    // mode-switch condition, so `pc <= epc` cannot be proven.
    CheckOptions opts;
    opts.solver.use_equations = false;
    Compiled c;
    auto result = check_source(kFig4, c, opts);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
}

// ---------------------------------------------------------------------------
// Hold obligations: label upgrade without a write must be rejected.
// ---------------------------------------------------------------------------

const char* kHoldUpgrade = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module hold(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} gpr;
  always @(seq) begin
    if (go) mode <= 1'b0;  // label of gpr may change U -> T ...
    else    mode <= 1'b1;
  end
  // ... but gpr is never cleared or endorsed: implicit downgrade.
endmodule
)";

TEST(HoldObligation, LabelUpgradeWithoutWriteRejected) {
    Compiled c;
    auto result = check_source(kHoldUpgrade, c);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
    bool hold_failed = false;
    for (const auto& ob : result.obligations)
        if (ob.kind == check::ObligationKind::Hold && !ob.result.proven())
            hold_failed = true;
    EXPECT_TRUE(hold_failed) << c.errors();
}

const char* kHoldUpgradeCleared = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module hold(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} gpr;
  always @(seq) begin
    if (go) mode <= 1'b0;
    else    mode <= 1'b1;
  end
  always @(seq) begin
    if (go && (next(mode) == 1'b0) && (mode == 1'b1))
      gpr <= 8'b0; // cleared on the U -> T upgrade
  end
endmodule
)";

TEST(HoldObligation, ClearingOnUpgradeAccepted) {
    Compiled c;
    auto result = check_source(kHoldUpgradeCleared, c);
    EXPECT_TRUE(result.ok) << c.errors();
}

TEST(HoldObligation, SysretDirectionNeedsNoCode) {
    // Label change T -> U (e.g. SYSRET) requires no explicit handling:
    // trusted data may conservatively be treated as untrusted.
    const char* src = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module sysret(input com {T} ret);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} gpr;
  always @(seq) begin
    if (ret && (mode == 1'b0)) mode <= 1'b1; // T -> U only
  end
endmodule
)";
    Compiled c;
    auto result = check_source(src, c);
    EXPECT_TRUE(result.ok) << c.errors();
}

} // namespace
} // namespace svlc::test
