// Symbolic leak hunter suite: the bounded search must find the paper's
// Figure 3 implicit downgrade as a *replay-confirmed* trace, certify the
// checker-accepted designs leak-free to the depth bound, behave
// deterministically, and stay a sound refinement of the TaintTracker
// (every candidate confirms — the same contract the fuzz oracle holds).
#include "driver/driver.hpp"
#include "hunt/corpus.hpp"
#include "hunt/hunter.hpp"
#include "hunt/symexec.hpp"
#include "support/fsutil.hpp"
#include "test_util.hpp"
#include "verify/taint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <sstream>

namespace svlc::test {
namespace {

// Figure 3 with the untrusted register driven from an untrusted input —
// identical to verify_test's kFig3Driven so the two suites agree on
// what "the leak" means.
const char* kFig3Driven = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module fig3(input com {T} in_v, input com [7:0] {U} in_u);
  reg seq {T} v;
  reg seq [7:0] {T} trusted;
  reg seq [7:0] {U} untrusted;
  reg seq [7:0] {mode_to_lb(v)} shared;
  always @(seq) begin
    v <= in_v;
    untrusted <= in_u;
    if (v == 1'b1) shared <= untrusted;
    else           trusted <= shared;
  end
endmodule
)";

hunt::HuntOptions small_hunt(uint64_t depth = 6) {
    hunt::HuntOptions opts;
    opts.depth = depth;
    opts.beam = 4;
    opts.branch = 4;
    return opts;
}

TEST(Hunt, FindsFig3ImplicitDowngrade) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntResult r = hunt::hunt(*c.design, small_hunt());
    ASSERT_EQ(r.verdict, hunt::HuntVerdict::Leak);
    EXPECT_TRUE(r.replay.confirmed);
    EXPECT_EQ(c.design->net(r.replay.net).name, "shared");
    EXPECT_EQ(r.unconfirmed_candidates, 0u);
    EXPECT_FALSE(r.trace.cycles.empty());
}

TEST(Hunt, TraceReplaysThroughConcreteOracle) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntResult r = hunt::hunt(*c.design, small_hunt());
    ASSERT_EQ(r.verdict, hunt::HuntVerdict::Leak);
    // Replaying the reported trace from scratch reproduces the verdict:
    // the trace is a self-contained witness, not search-state residue.
    hunt::ReplayWitness w =
        hunt::replay_trace(*c.design, r.trace, r.observer);
    EXPECT_TRUE(w.confirmed);
    EXPECT_EQ(w.net, r.replay.net);
}

TEST(Hunt, MinimizedTraceStillConfirms) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntOptions opts = small_hunt();
    opts.minimize = true;
    hunt::HuntResult minimized = hunt::hunt(*c.design, opts);
    ASSERT_EQ(minimized.verdict, hunt::HuntVerdict::Leak);
    EXPECT_TRUE(minimized.replay.confirmed);

    opts.minimize = false;
    hunt::HuntResult raw = hunt::hunt(*c.design, opts);
    ASSERT_EQ(raw.verdict, hunt::HuntVerdict::Leak);
    // ddmin never makes the witness longer.
    EXPECT_LE(minimized.trace.cycles.size(), raw.trace.cycles.size());
}

TEST(Hunt, CleanModeSwitchGetsCertificate) {
    // Figure 4's guard discipline (next(mode)) — checker-accepted, and
    // the hunter must agree to the bound.
    auto c = compile(policy_header() + R"(
module m(input com {T} go, input com [7:0] {U} in_u);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (go && (mode == 1'b1) && (next(mode) == 1'b0))
      r <= 8'h0;
    else if (mode == 1'b1)
      r <= in_u;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntResult r = hunt::hunt(*c.design, small_hunt(8));
    EXPECT_EQ(r.verdict, hunt::HuntVerdict::NoLeak);
    EXPECT_EQ(r.unconfirmed_candidates, 0u);
}

TEST(Hunt, AllTrustedInputsMeansNoSecrets) {
    auto c = compile(R"(
lattice { level T; level U; flow T -> U; }
module m(input com [7:0] {T} a, output com [7:0] {T} out);
  reg seq [7:0] {T} r;
  assign out = r;
  always @(seq) begin
    r <= a + 8'h1;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntResult r = hunt::hunt(*c.design, small_hunt(2));
    EXPECT_EQ(r.verdict, hunt::HuntVerdict::NoSecrets);
    EXPECT_EQ(r.states_explored, 0u) << "NoSecrets must short-circuit";
}

TEST(Hunt, DeterministicInSeed) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntOptions opts = small_hunt();
    hunt::HuntResult a = hunt::hunt(*c.design, opts);
    hunt::HuntResult b = hunt::hunt(*c.design, opts);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.states_explored, b.states_explored);
    EXPECT_EQ(a.assignments_tried, b.assignments_tried);
    ASSERT_EQ(a.trace.cycles.size(), b.trace.cycles.size());
    for (size_t i = 0; i < a.trace.cycles.size(); ++i) {
        ASSERT_EQ(a.trace.cycles[i].values.size(),
                  b.trace.cycles[i].values.size());
        for (size_t j = 0; j < a.trace.cycles[i].values.size(); ++j) {
            EXPECT_EQ(a.trace.cycles[i].values[j].first,
                      b.trace.cycles[i].values[j].first);
            EXPECT_EQ(a.trace.cycles[i].values[j].second,
                      b.trace.cycles[i].values[j].second);
        }
    }
}

TEST(Hunt, JsonReportCarriesSchemaAndVerdict) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntResult r = hunt::hunt(*c.design, small_hunt());
    std::string json = hunt::hunt_json(*c.design, r);
    EXPECT_NE(json.find("svlc-hunt/v1"), std::string::npos);
    EXPECT_NE(json.find("\"verdict\""), std::string::npos);
    EXPECT_NE(json.find("leak"), std::string::npos);
    EXPECT_NE(json.find("\"replay_confirmed\": true"), std::string::npos);
}

TEST(Hunt, HdlFig3FileFindsLeak) {
    std::string source;
    ASSERT_TRUE(read_file(SVLC_HDL_DIR "/fig3_implicit_downgrade.svlc",
                          source));
    auto c = compile(source);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::HuntResult r = hunt::hunt(*c.design, small_hunt());
    EXPECT_EQ(r.verdict, hunt::HuntVerdict::Leak);
    EXPECT_TRUE(r.replay.confirmed);
    EXPECT_EQ(r.unconfirmed_candidates, 0u);
}

// --- corpus ---------------------------------------------------------------

TEST(HuntCorpus, PlantedRingLeaksCleanRingDoesNot) {
    auto planted = compile(hunt::ring_scenario_source(2, true));
    ASSERT_TRUE(planted.ok()) << planted.errors();
    hunt::HuntResult rp = hunt::hunt(*planted.design, small_hunt(6));
    EXPECT_EQ(rp.verdict, hunt::HuntVerdict::Leak);
    EXPECT_TRUE(rp.replay.confirmed);
    EXPECT_EQ(rp.unconfirmed_candidates, 0u);

    auto clean = compile(hunt::ring_scenario_source(2, false));
    ASSERT_TRUE(clean.ok()) << clean.errors();
    hunt::HuntResult rc = hunt::hunt(*clean.design, small_hunt(6));
    EXPECT_EQ(rc.verdict, hunt::HuntVerdict::NoLeak);
    EXPECT_EQ(rc.unconfirmed_candidates, 0u);
}

TEST(HuntCorpus, PlantedCacheLeaksCleanCacheDoesNot) {
    auto planted = compile(hunt::cache_scenario_source(4, true));
    ASSERT_TRUE(planted.ok()) << planted.errors();
    hunt::HuntResult rp = hunt::hunt(*planted.design, small_hunt(6));
    EXPECT_EQ(rp.verdict, hunt::HuntVerdict::Leak);
    EXPECT_TRUE(rp.replay.confirmed);

    auto clean = compile(hunt::cache_scenario_source(4, false));
    ASSERT_TRUE(clean.ok()) << clean.errors();
    hunt::HuntResult rc = hunt::hunt(*clean.design, small_hunt(6));
    EXPECT_EQ(rc.verdict, hunt::HuntVerdict::NoLeak);
    EXPECT_EQ(rc.unconfirmed_candidates, 0u);
}

TEST(HuntCorpus, ScenariosAreDeterministicBytes) {
    EXPECT_EQ(hunt::ring_scenario_source(4, true),
              hunt::ring_scenario_source(4, true));
    EXPECT_EQ(hunt::cache_scenario_source(16, false),
              hunt::cache_scenario_source(16, false));
    EXPECT_NE(hunt::ring_scenario_source(4, true),
              hunt::ring_scenario_source(4, false));
}

TEST(HuntCorpus, WriteCorpusProducesLoadableHuntManifest) {
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
                   ("svlc-hunt-corpus-" + std::to_string(::getpid()));
    fs::remove_all(dir);
    auto scenarios = hunt::builtin_scenarios();
    ASSERT_FALSE(scenarios.empty());
    std::string error;
    ASSERT_TRUE(hunt::write_corpus(dir.string(), scenarios, error)) << error;

    std::string merror;
    std::vector<driver::JobSpec> jobs;
    ASSERT_TRUE(driver::jobs_from_manifest((dir / "manifest.txt").string(),
                                           jobs, merror))
        << merror;
    ASSERT_EQ(jobs.size(), scenarios.size());
    for (const auto& spec : jobs) {
        EXPECT_GT(spec.hunt_depth, 0u) << spec.name;
        EXPECT_FALSE(spec.top.empty()) << spec.name;
    }
    fs::remove_all(dir);
}

// --- driver integration ---------------------------------------------------

TEST(HuntDriver, HuntJobsReportLeakAsRejected) {
    driver::JobSpec spec;
    spec.name = "ring2-bug";
    spec.top = "ring2";
    spec.hunt_depth = 6;
    driver::JobResult res =
        driver::hunt_text(spec, hunt::ring_scenario_source(2, true));
    EXPECT_EQ(res.status, driver::JobStatus::Rejected);
    EXPECT_NE(res.diagnostics.find("leak"), std::string::npos);
}

TEST(HuntDriver, HuntJobsReportCertificateAsSecure) {
    driver::JobSpec spec;
    spec.name = "ring2-ok";
    spec.top = "ring2";
    spec.hunt_depth = 6;
    driver::JobResult res =
        driver::hunt_text(spec, hunt::ring_scenario_source(2, false));
    EXPECT_EQ(res.status, driver::JobStatus::Secure);
}

TEST(HuntDriver, ManifestHuntAttributeRoundTrips) {
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
                   ("svlc-hunt-manifest-" + std::to_string(::getpid()));
    fs::create_directories(dir);
    {
        std::ofstream src((dir / "a.svlc").string());
        src << hunt::ring_scenario_source(1, true);
        std::ofstream man((dir / "manifest.txt").string());
        man << "a.svlc top=ring1 hunt=5\n";
    }
    std::string error;
    std::vector<driver::JobSpec> jobs;
    ASSERT_TRUE(driver::jobs_from_manifest((dir / "manifest.txt").string(),
                                           jobs, error))
        << error;
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].hunt_depth, 5u);

    {
        std::ofstream man((dir / "manifest.txt").string());
        man << "a.svlc top=ring1 hunt=0\n";
    }
    jobs.clear();
    EXPECT_FALSE(driver::jobs_from_manifest(
        (dir / "manifest.txt").string(), jobs, error))
        << "hunt=0 must be a manifest error";
    fs::remove_all(dir);
}

// --- symbolic engine unit checks ------------------------------------------

TEST(TaintSim, SeedsOnlySecretInputs) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::TaintSim ts(*c.design,
                      c.design->policy.lattice().bottom());
    ts.step();
    EXPECT_EQ(ts.taint(c.design->find_net("in_u")), 0xFFu);
    EXPECT_EQ(ts.taint(c.design->find_net("in_v")), 0u);
}

TEST(TaintSim, TaintFollowsDataIntoRegisters) {
    auto c = compile(kFig3Driven);
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::TaintSim ts(*c.design, c.design->policy.lattice().bottom());
    ts.step();
    EXPECT_EQ(ts.taint(c.design->find_net("untrusted")), 0xFFu)
        << "in_u's taint must land in the untrusted register";
    EXPECT_EQ(ts.taint(c.design->find_net("trusted")), 0u);
}

TEST(TaintSim, UntaintedOperandsStayClean) {
    auto c = compile(policy_header() + R"(
module m(input com [7:0] {T} a, input com [7:0] {U} b,
         output com [7:0] {U} x, output com [7:0] {T} y);
  assign x = a + b;
  assign y = a & 8'h0F;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    hunt::TaintSim ts(*c.design, c.design->policy.lattice().bottom());
    ts.set_input(c.design->find_net("a"), BitVec(8, 0x12));
    ts.set_input(c.design->find_net("b"), BitVec(8, 0x34));
    ts.step();
    EXPECT_NE(ts.taint(c.design->find_net("x")), 0u);
    EXPECT_EQ(ts.taint(c.design->find_net("y")), 0u);
}

} // namespace
} // namespace svlc::test
