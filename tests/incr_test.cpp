// Persistent incremental verification (src/incr): fingerprint
// definition, verdict round-trips, entailment-cache persistence with
// budgeted oldest-first compaction, corruption recovery, and the driver
// integration (fingerprint skips, single-job invalidation, byte-identical
// verdict sets).
#include "incr/fingerprint.hpp"
#include "incr/store.hpp"

#include "driver/driver.hpp"
#include "driver/watch.hpp"
#include "support/fsutil.hpp"
#include "support/hash.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

namespace svlc::test {
namespace {

namespace fs = std::filesystem;
using driver::BatchReport;
using driver::DriverOptions;
using driver::JobSpec;
using driver::JobStatus;
using driver::VerificationDriver;
using incr::ArtifactStore;
using incr::StoredVerdict;
using incr::StoreOptions;

const char* kSecure = R"(
lattice { level T; level U; flow T -> U; }
module ok(input com {T} a, output com {T} b);
  assign b = a;
endmodule
)";

const char* kRejected = R"(
lattice { level T; level U; flow T -> U; }
module bad(input com {U} dirty);
  reg seq {T} creg;
  always @(seq) begin
    creg <= dirty;
  end
endmodule
)";

// A design whose obligations hit the enumeration path, so Proven entries
// land in the entailment cache (domain >= 8).
const char* kModeSwitch = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} rst,
         input com [15:0] {T} decode_out,
         input com [15:0] {U} epc_in);
  wire com {T} mode_switch;
  reg seq [15:0] {U} epc;
  reg seq {T} mode;
  reg seq [15:0] {mode_to_lb(mode)} pc;
  assign mode_switch = decode_out[4];
  always @(seq) begin
    if (rst) pc <= 16'b0;
    else if (mode_switch && (next(mode) == 1'b0)) pc <= 16'h8000;
    else if (mode_switch) pc <= epc;
  end
  always @(seq) begin
    if (mode_switch) mode <= ~mode;
  end
  always @(seq) begin
    epc <= epc_in;
  end
endmodule
)";

class IncrTest : public ::testing::Test {
protected:
    void SetUp() override {
        // Keyed by test name, not a counter: ctest runs each test in its
        // own process, where any per-process counter restarts at zero
        // and parallel tests would collide on the same directory.
        dir_ = fs::temp_directory_path() /
               (std::string("svlc_incr_test_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::error_code ec;
        fs::remove_all(dir_, ec);
        fs::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string store_dir() const { return (dir_ / "store").string(); }
    std::string write(const fs::path& rel, const std::string& text) {
        fs::path p = dir_ / rel;
        std::ofstream out(p);
        out << text;
        return p.string();
    }
    fs::path dir_;
};

// --- hashing / fingerprints ------------------------------------------------

TEST(IncrHash, Sha256KnownVectors) {
    EXPECT_EQ(sha256_hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
    EXPECT_EQ(sha256_hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
    // Multi-block + incremental chunking agree with one-shot.
    std::string big(1000, 'x');
    Sha256 h;
    h.update(big.substr(0, 7));
    h.update(big.substr(7));
    EXPECT_EQ(h.hex_digest(), sha256_hex(big));
}

TEST(IncrFingerprint, SensitiveToEveryVerdictInput) {
    check::CheckOptions opts;
    std::string base = incr::job_fingerprint("a.svlc", kSecure, "", opts);
    EXPECT_EQ(base.size(), 64u);

    EXPECT_EQ(base, incr::job_fingerprint("a.svlc", kSecure, "", opts));
    EXPECT_NE(base, incr::job_fingerprint("b.svlc", kSecure, "", opts));
    EXPECT_NE(base,
              incr::job_fingerprint("a.svlc", kRejected, "", opts));
    EXPECT_NE(base, incr::job_fingerprint("a.svlc", kSecure, "ok", opts));

    check::CheckOptions classic;
    classic.mode = check::CheckerMode::ClassicSecVerilog;
    EXPECT_NE(base, incr::job_fingerprint("a.svlc", kSecure, "", classic));

    check::CheckOptions budget;
    budget.solver.max_candidates = 42;
    EXPECT_NE(base, incr::job_fingerprint("a.svlc", kSecure, "", budget));

    // The deadline is NOT part of the fingerprint: stored verdicts are
    // deadline-independent (timeouts are never stored).
    check::CheckOptions deadline = opts;
    deadline.solver.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(1);
    EXPECT_EQ(base,
              incr::job_fingerprint("a.svlc", kSecure, "", deadline));
}

// --- verdict store ---------------------------------------------------------

TEST_F(IncrTest, VerdictRoundTrip) {
    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    std::string fp = sha256_hex("some job");
    EXPECT_FALSE(store.load_verdict(fp).has_value());

    StoredVerdict v;
    v.secure = false;
    v.obligations = 7;
    v.failed = 2;
    v.downgrades = 1;
    v.diagnostics = "line one\nline \"two\" with bytes \x01\x02\n";
    ASSERT_TRUE(store.store_verdict(fp, v));

    auto got = store.load_verdict(fp);
    ASSERT_TRUE(got.has_value());
    EXPECT_FALSE(got->secure);
    EXPECT_EQ(got->obligations, 7u);
    EXPECT_EQ(got->failed, 2u);
    EXPECT_EQ(got->downgrades, 1u);
    EXPECT_EQ(got->diagnostics, v.diagnostics);

    auto s = store.stats();
    EXPECT_EQ(s.verdict_hits, 1u);
    EXPECT_EQ(s.verdict_misses, 1u);
    EXPECT_EQ(s.verdict_stores, 1u);
    EXPECT_EQ(s.corrupt_discarded, 0u);

    // Reopening (fresh process) sees the same record.
    ArtifactStore reopened({store_dir(), 1024});
    ASSERT_TRUE(reopened.open(error)) << error;
    ASSERT_TRUE(reopened.load_verdict(fp).has_value());
}

TEST_F(IncrTest, CorruptVerdictIsDiscardedNotReplayed) {
    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    std::string fp = sha256_hex("doomed");
    StoredVerdict v;
    v.secure = true;
    v.obligations = 3;
    ASSERT_TRUE(store.store_verdict(fp, v));

    // Flip one payload byte: checksum mismatch → discarded and deleted.
    fs::path file;
    for (const auto& e :
         fs::recursive_directory_iterator(fs::path(store_dir()) / "v2" /
                                          "verdicts"))
        if (e.is_regular_file())
            file = e.path();
    ASSERT_FALSE(file.empty());
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            std::string(incr::kStoreFormat).size() + 10));
        f.put('X');
    }
    EXPECT_FALSE(store.load_verdict(fp).has_value());
    EXPECT_EQ(store.stats().corrupt_discarded, 1u);
    EXPECT_FALSE(fs::exists(file));

    // Truncation likewise fails closed.
    ASSERT_TRUE(store.store_verdict(fp, v));
    fs::resize_file(fs::path(store_dir()) / "v2" / "verdicts" /
                        fp.substr(0, 2) / fp,
                    12);
    EXPECT_FALSE(store.load_verdict(fp).has_value());
    EXPECT_EQ(store.stats().corrupt_discarded, 2u);
}

TEST_F(IncrTest, VersionMismatchedStoreIsRebuilt) {
    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    std::string fp = sha256_hex("old generation");
    ASSERT_TRUE(store.store_verdict(fp, {}));

    ASSERT_TRUE(write_file_atomic(
        (fs::path(store_dir()) / "v2" / "FORMAT").string(),
        "svlc-store/v999\n"));

    ArtifactStore next({store_dir(), 1024});
    ASSERT_TRUE(next.open(error)) << error;
    EXPECT_EQ(next.stats().corrupt_discarded, 1u);
    EXPECT_FALSE(next.load_verdict(fp).has_value()); // wiped, not misread
    // And the store is usable again immediately.
    ASSERT_TRUE(next.store_verdict(fp, {}));
    EXPECT_TRUE(next.load_verdict(fp).has_value());
}

// --- entailment-cache persistence ------------------------------------------

TEST_F(IncrTest, EntailCachePersistsAcrossStores) {
    solver::EntailCache cache;
    cache.insert("key-one\nwith newline", {100});
    cache.insert("key-two", {200});

    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_EQ(store.flush_entail(cache), 2u);

    solver::EntailCache warm;
    ArtifactStore reopened({store_dir(), 1024});
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.load_entail(warm), 2u);
    auto one = warm.lookup("key-one\nwith newline");
    auto two = warm.lookup("key-two");
    ASSERT_TRUE(one.has_value());
    ASSERT_TRUE(two.has_value());
    EXPECT_EQ(one->candidates, 100u);
    EXPECT_EQ(two->candidates, 200u);
}

TEST_F(IncrTest, EntailBudgetEvictsOldestFirst) {
    ArtifactStore store({store_dir(), 6});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    solver::EntailCache first;
    for (int i = 0; i < 5; ++i)
        first.insert("old-" + std::to_string(i), {1});
    EXPECT_EQ(store.flush_entail(first), 5u);

    solver::EntailCache second;
    for (int i = 0; i < 5; ++i)
        second.insert("new-" + std::to_string(i), {2});
    // 5 old + 5 new = 10, budget 6 → the 4 oldest (file front) drop.
    EXPECT_EQ(store.flush_entail(second), 6u);
    EXPECT_EQ(store.stats().entail_evicted, 4u);

    solver::EntailCache warm;
    ArtifactStore reopened({store_dir(), 6});
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.load_entail(warm), 6u);
    // Every new-generation entry survived; old ones were evicted first.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(warm.lookup("new-" + std::to_string(i)).has_value())
            << i;
    size_t old_survivors = 0;
    for (int i = 0; i < 5; ++i)
        old_survivors +=
            warm.lookup("old-" + std::to_string(i)).has_value();
    EXPECT_EQ(old_survivors, 1u);
}

TEST_F(IncrTest, CorruptEntailFileLoadsAsEmpty) {
    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    solver::EntailCache cache;
    cache.insert("a-key", {1});
    ASSERT_EQ(store.flush_entail(cache), 1u);

    fs::path file = fs::path(store_dir()) / "v2" / "entail.cache";
    fs::resize_file(file, 30);

    solver::EntailCache warm;
    EXPECT_EQ(store.load_entail(warm), 0u);
    EXPECT_EQ(store.stats().corrupt_discarded, 1u);
    EXPECT_EQ(warm.stats().entries, 0u);
    // The next flush rebuilds the file from scratch.
    EXPECT_EQ(store.flush_entail(cache), 1u);
    solver::EntailCache again;
    EXPECT_EQ(store.load_entail(again), 1u);
}

// --- store merge (distributed delta-sync substrate) ------------------------

TEST(IncrCodec, StoredVerdictRoundTripsAndFailsClosed) {
    StoredVerdict v;
    v.secure = false;
    v.obligations = 11;
    v.failed = 3;
    v.downgrades = 2;
    v.diagnostics = "multi\nline \x01 bytes";
    std::string payload = incr::encode_stored_verdict(v);

    StoredVerdict out;
    ASSERT_TRUE(incr::decode_stored_verdict(payload, out));
    EXPECT_EQ(out.secure, v.secure);
    EXPECT_EQ(out.obligations, v.obligations);
    EXPECT_EQ(out.failed, v.failed);
    EXPECT_EQ(out.downgrades, v.downgrades);
    EXPECT_EQ(out.diagnostics, v.diagnostics);
    // Equal verdicts encode to equal bytes (the merge/wire invariant).
    EXPECT_EQ(payload, incr::encode_stored_verdict(out));

    // Truncation and trailing garbage both fail closed.
    EXPECT_FALSE(incr::decode_stored_verdict(
        payload.substr(0, payload.size() / 2), out));
    EXPECT_FALSE(incr::decode_stored_verdict(payload + "extra", out));
    EXPECT_FALSE(incr::decode_stored_verdict("", out));
}

StoredVerdict sample_verdict(bool secure, uint64_t obligations) {
    StoredVerdict v;
    v.secure = secure;
    v.obligations = obligations;
    v.failed = secure ? 0 : 1;
    v.diagnostics = secure ? "" : "some diagnostic\n";
    return v;
}

/// Byte-compare two store trees: entail.cache plus every verdict file.
void expect_stores_identical(const std::string& a, const std::string& b) {
    auto slurp = [](const fs::path& p) {
        std::string text;
        EXPECT_TRUE(read_file(p.string(), text)) << p;
        return text;
    };
    fs::path ea = fs::path(a) / "v2" / "entail.cache";
    fs::path eb = fs::path(b) / "v2" / "entail.cache";
    EXPECT_EQ(fs::exists(ea), fs::exists(eb));
    if (fs::exists(ea)) {
        EXPECT_EQ(slurp(ea), slurp(eb));
    }

    auto verdict_files = [](const std::string& root) {
        std::vector<fs::path> rel;
        fs::path base = fs::path(root) / "v2" / "verdicts";
        if (fs::exists(base))
            for (const auto& e : fs::recursive_directory_iterator(base))
                if (e.is_regular_file())
                    rel.push_back(fs::relative(e.path(), base));
        std::sort(rel.begin(), rel.end());
        return rel;
    };
    auto fa = verdict_files(a);
    ASSERT_EQ(fa, verdict_files(b));
    for (const auto& rel : fa)
        EXPECT_EQ(slurp(fs::path(a) / "v2" / "verdicts" / rel),
                  slurp(fs::path(b) / "v2" / "verdicts" / rel))
            << rel;
}

TEST_F(IncrTest, MergeDedupsIdenticalFingerprints) {
    std::string a_dir = (dir_ / "a").string();
    std::string b_dir = (dir_ / "b").string();
    ArtifactStore a({a_dir, 1024}), b({b_dir, 1024});
    std::string error;
    ASSERT_TRUE(a.open(error)) << error;
    ASSERT_TRUE(b.open(error)) << error;

    std::string fp1 = sha256_hex("one"), fp2 = sha256_hex("two"),
                fp3 = sha256_hex("three");
    ASSERT_TRUE(a.store_verdict(fp1, sample_verdict(true, 3)));
    ASSERT_TRUE(a.store_verdict(fp2, sample_verdict(false, 5)));
    ASSERT_TRUE(b.store_verdict(fp2, sample_verdict(false, 5)));
    ASSERT_TRUE(b.store_verdict(fp3, sample_verdict(true, 7)));

    solver::EntailCache bc;
    bc.insert("shared-key", {10});
    ASSERT_EQ(b.flush_entail(bc), 1u);
    solver::EntailCache ac;
    // Same key with a *larger* candidate count: the merge keeps the
    // smaller (either proof is sound; the smaller replays faster).
    ac.insert("shared-key", {25});
    ASSERT_EQ(a.flush_entail(ac), 1u);

    auto stats = a.merge_from(b_dir, error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->verdicts_added, 1u);
    EXPECT_EQ(stats->verdicts_present, 1u);
    EXPECT_EQ(stats->entail_added, 0u);
    EXPECT_EQ(stats->entail_present, 1u);
    EXPECT_EQ(stats->corrupt_skipped, 0u);

    EXPECT_TRUE(a.has_verdict(fp1));
    EXPECT_TRUE(a.has_verdict(fp2));
    EXPECT_TRUE(a.has_verdict(fp3));
    EXPECT_EQ(a.list_verdicts().size(), 3u);

    solver::EntailCache merged;
    ArtifactStore reopened({a_dir, 1024});
    ASSERT_TRUE(reopened.open(error)) << error;
    ASSERT_EQ(reopened.load_entail(merged), 1u);
    auto entry = merged.lookup("shared-key");
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->candidates, 10u);

    // A missing peer is the one hard error.
    EXPECT_FALSE(a.merge_from((dir_ / "nope").string(), error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST_F(IncrTest, MergeToleratesCorruptPeerEntry) {
    std::string a_dir = (dir_ / "a").string();
    std::string b_dir = (dir_ / "b").string();
    ArtifactStore a({a_dir, 1024}), b({b_dir, 1024});
    std::string error;
    ASSERT_TRUE(a.open(error)) << error;
    ASSERT_TRUE(b.open(error)) << error;

    std::string good = sha256_hex("good"), bad = sha256_hex("bad");
    ASSERT_TRUE(b.store_verdict(good, sample_verdict(true, 1)));
    ASSERT_TRUE(b.store_verdict(bad, sample_verdict(false, 2)));

    fs::path bad_file = fs::path(b_dir) / "v2" / "verdicts" /
                        bad.substr(0, 2) / bad;
    ASSERT_TRUE(fs::exists(bad_file));
    {
        std::fstream f(bad_file,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            std::string(incr::kStoreFormat).size() + 10));
        f.put('X');
    }

    auto stats = a.merge_from(b_dir, error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->verdicts_added, 1u);
    EXPECT_EQ(stats->corrupt_skipped, 1u);
    EXPECT_TRUE(a.has_verdict(good));
    EXPECT_FALSE(a.has_verdict(bad));
    // The peer is read-only input: its corrupt file must survive (the
    // peer's own next load will deal with it).
    EXPECT_TRUE(fs::exists(bad_file));
}

TEST_F(IncrTest, MergeRespectsEntailBudget) {
    std::string a_dir = (dir_ / "a").string();
    std::string b_dir = (dir_ / "b").string();
    ArtifactStore a({a_dir, 6}), b({b_dir, 1024});
    std::string error;
    ASSERT_TRUE(a.open(error)) << error;
    ASSERT_TRUE(b.open(error)) << error;

    solver::EntailCache ac, bc;
    for (int i = 0; i < 4; ++i)
        ac.insert("local-" + std::to_string(i), {1});
    ASSERT_EQ(a.flush_entail(ac), 4u);
    for (int i = 0; i < 5; ++i)
        bc.insert("peer-" + std::to_string(i), {2});
    ASSERT_EQ(b.flush_entail(bc), 5u);

    auto stats = a.merge_from(b_dir, error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->entail_added, 5u);
    EXPECT_EQ(stats->entail_evicted, 3u); // 4 + 5 = 9, budget 6

    solver::EntailCache merged;
    ArtifactStore reopened({a_dir, 6});
    ASSERT_TRUE(reopened.open(error)) << error;
    EXPECT_EQ(reopened.load_entail(merged), 6u);
}

TEST_F(IncrTest, MergeIsByteDeterministicAcrossOrders) {
    // Two targets, the same two peers merged in opposite orders: the
    // resulting store trees must be byte-identical (canonical entail
    // order, canonical verdict encoding).
    std::string p1_dir = (dir_ / "p1").string();
    std::string p2_dir = (dir_ / "p2").string();
    ArtifactStore p1({p1_dir, 1024}), p2({p2_dir, 1024});
    std::string error;
    ASSERT_TRUE(p1.open(error)) << error;
    ASSERT_TRUE(p2.open(error)) << error;

    std::string fp1 = sha256_hex("j1"), fp2 = sha256_hex("j2"),
                fp_shared = sha256_hex("shared");
    ASSERT_TRUE(p1.store_verdict(fp1, sample_verdict(true, 2)));
    ASSERT_TRUE(p1.store_verdict(fp_shared, sample_verdict(false, 9)));
    ASSERT_TRUE(p2.store_verdict(fp2, sample_verdict(true, 4)));
    ASSERT_TRUE(p2.store_verdict(fp_shared, sample_verdict(false, 9)));

    solver::EntailCache c1, c2;
    c1.insert("zeta-key", {1});
    c1.insert("both-key", {30});
    ASSERT_EQ(p1.flush_entail(c1), 2u);
    c2.insert("alpha-key", {2});
    c2.insert("both-key", {20});
    ASSERT_EQ(p2.flush_entail(c2), 2u);

    std::string x_dir = (dir_ / "x").string();
    std::string y_dir = (dir_ / "y").string();
    ArtifactStore x({x_dir, 1024}), y({y_dir, 1024});
    ASSERT_TRUE(x.open(error)) << error;
    ASSERT_TRUE(y.open(error)) << error;

    ASSERT_TRUE(x.merge_from(p1_dir, error).has_value()) << error;
    ASSERT_TRUE(x.merge_from(p2_dir, error).has_value()) << error;
    ASSERT_TRUE(y.merge_from(p2_dir, error).has_value()) << error;
    ASSERT_TRUE(y.merge_from(p1_dir, error).has_value()) << error;

    expect_stores_identical(x_dir, y_dir);

    // And the collision kept the smaller candidate count on both.
    solver::EntailCache mx;
    ArtifactStore rx({x_dir, 1024});
    ASSERT_TRUE(rx.open(error)) << error;
    ASSERT_EQ(rx.load_entail(mx), 3u);
    auto both = mx.lookup("both-key");
    ASSERT_TRUE(both.has_value());
    EXPECT_EQ(both->candidates, 20u);
}

// --- obligation records (v2) -----------------------------------------------

TEST(IncrCodec, StoredObligationRoundTripsAndFailsClosed) {
    incr::StoredObligation o;
    o.proven = false;
    o.lhs_level = 1;
    o.rhs_level = 0;
    o.witness.push_back({3, false, 0x2au});
    o.witness.push_back({0, true, 1u});
    std::string payload = incr::encode_stored_obligation(o);

    incr::StoredObligation out;
    ASSERT_TRUE(incr::decode_stored_obligation(payload, out));
    EXPECT_EQ(out.proven, o.proven);
    EXPECT_EQ(out.lhs_level, o.lhs_level);
    EXPECT_EQ(out.rhs_level, o.rhs_level);
    ASSERT_EQ(out.witness.size(), 2u);
    EXPECT_EQ(out.witness[0].var, 3u);
    EXPECT_FALSE(out.witness[0].primed);
    EXPECT_EQ(out.witness[0].value, 0x2au);
    EXPECT_EQ(out.witness[1].var, 0u);
    EXPECT_TRUE(out.witness[1].primed);
    // Equal records encode to equal bytes (the merge/wire invariant).
    EXPECT_EQ(payload, incr::encode_stored_obligation(out));

    incr::StoredObligation proven;
    proven.proven = true;
    std::string pp = incr::encode_stored_obligation(proven);
    ASSERT_TRUE(incr::decode_stored_obligation(pp, out));
    EXPECT_TRUE(out.proven);
    EXPECT_TRUE(out.witness.empty());

    // Truncation and trailing garbage both fail closed.
    EXPECT_FALSE(incr::decode_stored_obligation(
        payload.substr(0, payload.size() / 2), out));
    EXPECT_FALSE(incr::decode_stored_obligation(payload + "junk", out));
    EXPECT_FALSE(incr::decode_stored_obligation("", out));
}

TEST_F(IncrTest, ObligationStoreRoundTripAndCorruptionDiscard) {
    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;

    std::string fp = sha256_hex("an obligation");
    EXPECT_FALSE(store.load_obligation(fp).has_value());
    EXPECT_FALSE(store.has_obligation(fp));

    incr::StoredObligation o;
    o.proven = false;
    o.lhs_level = 1;
    o.rhs_level = 0;
    o.witness.push_back({2, true, 7u});
    ASSERT_TRUE(store.store_obligation(fp, o));
    EXPECT_TRUE(store.has_obligation(fp));
    auto got = store.load_obligation(fp);
    ASSERT_TRUE(got.has_value());
    EXPECT_FALSE(got->proven);
    ASSERT_EQ(got->witness.size(), 1u);
    EXPECT_EQ(got->witness[0].var, 2u);

    EXPECT_EQ(store.list_obligations(),
              std::vector<std::string>{fp});

    auto s = store.stats();
    EXPECT_EQ(s.obligation_hits, 1u);
    EXPECT_EQ(s.obligation_misses, 1u);
    EXPECT_EQ(s.obligation_stores, 1u);

    // Bit-flip → checksum mismatch → discarded and deleted, never
    // replayed.
    fs::path file = fs::path(store_dir()) / "v2" / "obligations" /
                    fp.substr(0, 2) / fp;
    ASSERT_TRUE(fs::exists(file));
    {
        std::fstream f(file,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            std::string(incr::kStoreFormat).size() + 10));
        f.put('X');
    }
    EXPECT_FALSE(store.load_obligation(fp).has_value());
    EXPECT_EQ(store.stats().corrupt_discarded, 1u);
    EXPECT_FALSE(fs::exists(file));
}

TEST_F(IncrTest, MergeCarriesObligationRecords) {
    std::string a_dir = (dir_ / "a").string();
    std::string b_dir = (dir_ / "b").string();
    ArtifactStore a({a_dir, 1024}), b({b_dir, 1024});
    std::string error;
    ASSERT_TRUE(a.open(error)) << error;
    ASSERT_TRUE(b.open(error)) << error;

    std::string shared = sha256_hex("shared-ob"),
                only_b = sha256_hex("b-only-ob");
    incr::StoredObligation o;
    o.proven = true;
    ASSERT_TRUE(a.store_obligation(shared, o));
    ASSERT_TRUE(b.store_obligation(shared, o));
    ASSERT_TRUE(b.store_obligation(only_b, o));

    auto stats = a.merge_from(b_dir, error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->obligations_added, 1u);
    EXPECT_EQ(stats->obligations_present, 1u);
    EXPECT_TRUE(a.has_obligation(only_b));
    EXPECT_EQ(a.list_obligations().size(), 2u);
}

TEST_F(IncrTest, LegacyV1StoreIsDiscardedWholesale) {
    // A committed v1-generation store (the pre-obligation schema): opening
    // it must discard the whole v1/ tree in one step — no entry is ever
    // read through the old framing — and rebuild under v2/.
    fs::path fixture = fs::path(SVLC_FIXTURE_DIR) / "store_v1";
    ASSERT_TRUE(fs::exists(fixture / "v1" / "FORMAT"));
    fs::copy(fixture, dir_ / "store", fs::copy_options::recursive);
    ASSERT_TRUE(fs::exists(fs::path(store_dir()) / "v1" / "FORMAT"));

    ArtifactStore store({store_dir(), 1024});
    std::string error;
    ASSERT_TRUE(store.open(error)) << error;
    EXPECT_EQ(store.stats().legacy_discarded, 1u);
    EXPECT_FALSE(fs::exists(fs::path(store_dir()) / "v1"));
    EXPECT_TRUE(fs::exists(fs::path(store_dir()) / "v2" / "FORMAT"));

    // The rebuilt store is immediately usable, and nothing leaked from
    // the discarded generation.
    EXPECT_TRUE(store.list_verdicts().empty());
    EXPECT_TRUE(store.list_obligations().empty());
    std::string fp = sha256_hex("fresh");
    ASSERT_TRUE(store.store_verdict(fp, {}));
    EXPECT_TRUE(store.load_verdict(fp).has_value());

    // A second open is clean: no v1/ left, no second discard.
    ArtifactStore again({store_dir(), 1024});
    ASSERT_TRUE(again.open(error)) << error;
    EXPECT_EQ(again.stats().legacy_discarded, 0u);
}

// --- obligation-level incrementality (driver) ------------------------------

/// Two-slice design: `who`'s obligations depend only on {handoff, who};
/// `count`'s read u_step. Editing u_step's label must re-solve exactly
/// the count-slice obligations and replay the rest.
const char* kSliced = R"(
lattice { level T; level U; flow T -> U; }
function owner(x:1) { 0 -> T; default -> U; }
module shared(input com {T} handoff,
              input com [7:0] {U} u_step,
              output com [7:0] {U} value);
  reg seq {T} who;
  reg seq [7:0] {owner(who)} count;
  assign value = count;
  always @(seq) begin
    if (handoff) who <= ~who;
  end
  always @(seq) begin
    if (handoff && (who == 1'b1) && (next(who) == 1'b0))
      count <= 8'h00;
    else if (who == 1'b1)
      count <= count + u_step;
    else
      count <= count + 8'h01;
  end
endmodule
)";

TEST_F(IncrTest, WhitespaceEditReplaysEveryObligation) {
    std::string path = write("a.svlc", kSliced);
    std::vector<JobSpec> jobs = {{path, path, "", "", 0}};
    DriverOptions opts;
    opts.store_dir = store_dir();

    BatchReport cold = VerificationDriver(opts).run(jobs);
    ASSERT_EQ(cold.results[0].status, JobStatus::Secure);
    size_t total = cold.results[0].obligations;
    ASSERT_GT(total, 0u);
    EXPECT_EQ(cold.results[0].obligations_solved, total);
    EXPECT_EQ(cold.results[0].obligations_replayed, 0u);

    // Comment + whitespace edit: the job fingerprint misses (bytes
    // changed) but every obligation fingerprint hits — zero solver work.
    write("a.svlc", "// an explanatory comment\n\n" + std::string(kSliced) +
                        "\n\n");
    BatchReport warm = VerificationDriver(opts).run(jobs);
    EXPECT_FALSE(warm.results[0].skipped);
    EXPECT_EQ(warm.results[0].obligations, total);
    EXPECT_EQ(warm.results[0].obligations_replayed, total);
    EXPECT_EQ(warm.results[0].obligations_solved, 0u);
    EXPECT_EQ(warm.results[0].solver.queries, 0u);

    // The replayed report is byte-identical to a from-scratch run of the
    // edited text.
    DriverOptions no_store;
    BatchReport fresh = VerificationDriver(no_store).run(jobs);
    EXPECT_EQ(warm.to_json(false), fresh.to_json(false));
    // The summary's verdict lines agree; its trailing solver line is
    // telemetry (0 queries when everything replays) and excluded.
    EXPECT_EQ(warm.summary().substr(0, warm.summary().find("solver:")),
              fresh.summary().substr(0, fresh.summary().find("solver:")));
}

TEST_F(IncrTest, OneNetLabelEditResolvesOnlyDependentSlice) {
    std::string path = write("a.svlc", kSliced);
    std::vector<JobSpec> jobs = {{path, path, "", "", 0}};
    DriverOptions opts;
    opts.store_dir = store_dir();

    BatchReport cold = VerificationDriver(opts).run(jobs);
    size_t total = cold.results[0].obligations;
    ASSERT_GT(total, 1u);

    // One-net label edit: u_step {U} -> {T} (T flows to U, still secure).
    // Only the obligation whose constraint reads u_step's label — the
    // count update — re-solves; who/value/hold obligations replay.
    std::string edited(kSliced);
    size_t pos = edited.find("{U} u_step");
    ASSERT_NE(pos, std::string::npos);
    edited.replace(pos, 3, "{T}");
    write("a.svlc", edited);

    BatchReport warm = VerificationDriver(opts).run(jobs);
    EXPECT_EQ(warm.results[0].status, JobStatus::Secure);
    EXPECT_EQ(warm.results[0].obligations, total);
    EXPECT_EQ(warm.results[0].obligations_solved, 1u);
    EXPECT_EQ(warm.results[0].obligations_replayed, total - 1);

    DriverOptions no_store;
    BatchReport fresh = VerificationDriver(no_store).run(jobs);
    EXPECT_EQ(warm.to_json(false), fresh.to_json(false));
}

/// Rejected with a *bound* counterexample: U ⊑ lb(sel) is refuted at
/// sel=0, so the stored obligation carries a witness binding to rebind
/// and re-render on replay.
const char* kRejectedWitness = R"(
lattice { level T; level U; flow T -> U; }
function lb(x:1) { 0 -> T; default -> U; }
module bad(input com {U} dirty, input com {T} sel);
  reg seq {lb(sel)} creg;
  always @(seq) begin
    creg <= dirty;
  end
endmodule
)";

TEST_F(IncrTest, JobRenameReplaysProofsAndRerendersDiagnostics) {
    // Names and locations are render-only: a rename misses the whole-job
    // fingerprint (the stored verdict's diagnostics embed the name) but
    // hits every obligation fingerprint, so proofs — including refutation
    // witnesses — replay while diagnostics re-render under the new name.
    std::string old_path = write("old.svlc", kRejectedWitness);
    DriverOptions opts;
    opts.store_dir = store_dir();
    BatchReport cold =
        VerificationDriver(opts).run({{old_path, old_path, "", "", 0}});
    ASSERT_EQ(cold.results[0].status, JobStatus::Rejected);
    size_t total = cold.results[0].obligations;
    ASSERT_GT(cold.results[0].failed, 0u);

    std::string new_path = write("renamed.svlc", kRejectedWitness);
    std::vector<JobSpec> renamed = {{new_path, new_path, "", "", 0}};
    BatchReport warm = VerificationDriver(opts).run(renamed);
    EXPECT_FALSE(warm.results[0].skipped); // job fp embeds the name
    EXPECT_EQ(warm.results[0].obligations, total);
    EXPECT_EQ(warm.results[0].obligations_replayed, total);
    EXPECT_EQ(warm.results[0].obligations_solved, 0u);
    EXPECT_EQ(warm.results[0].status, JobStatus::Rejected);
    EXPECT_NE(warm.results[0].diagnostics.find("renamed.svlc"),
              std::string::npos);
    EXPECT_EQ(warm.results[0].diagnostics.find("old.svlc"),
              std::string::npos);

    // Byte-identical to a cold run of the renamed job — witness text in
    // the flagged records included.
    DriverOptions no_store;
    BatchReport fresh = VerificationDriver(no_store).run(renamed);
    EXPECT_EQ(warm.to_json(false), fresh.to_json(false));
    ASSERT_FALSE(warm.results[0].flagged.empty());
    EXPECT_FALSE(warm.results[0].flagged[0].witness.empty());
}

// --- driver integration ----------------------------------------------------

TEST_F(IncrTest, SecondRunSkipsEverythingWithIdenticalVerdicts) {
    std::string a = write("a.svlc", kSecure);
    std::string b = write("b.svlc", kRejected);
    std::string c = write("c.svlc", kModeSwitch);
    std::vector<JobSpec> jobs = {{a, a, "", "", 0},
                                 {b, b, "", "", 0},
                                 {c, c, "", "", 0}};

    DriverOptions opts;
    opts.store_dir = store_dir();
    VerificationDriver cold(opts);
    BatchReport r1 = cold.run(jobs);
    EXPECT_EQ(r1.skipped_count(), 0u);
    EXPECT_TRUE(r1.store_enabled);
    EXPECT_EQ(r1.store.verdict_stores, 3u);
    ASSERT_EQ(r1.results.size(), 3u);
    EXPECT_EQ(r1.results[0].status, JobStatus::Secure);
    EXPECT_EQ(r1.results[1].status, JobStatus::Rejected);
    EXPECT_EQ(r1.results[2].status, JobStatus::Secure);
    EXPECT_EQ(r1.results[0].fingerprint.size(), 64u);

    // Fresh driver = fresh process: every job replays from the store.
    VerificationDriver warm(opts);
    BatchReport r2 = warm.run(jobs);
    EXPECT_EQ(r2.skipped_count(), 3u);
    EXPECT_EQ(r2.store.verdict_hits, 3u);
    for (const auto& r : r2.results) {
        EXPECT_TRUE(r.skipped);
        EXPECT_EQ(r.attempts, 0);
        EXPECT_EQ(r.solver.queries, 0u); // pipeline never ran
    }
    // The verdict set — the stable report — is byte-identical.
    EXPECT_EQ(r1.to_json(false), r2.to_json(false));
    EXPECT_EQ(r1.summary().substr(0, r1.summary().find("solver:")),
              r2.summary().substr(0, r2.summary().find("solver:")));
    // The full report says *why* each job was skipped.
    EXPECT_NE(r2.to_json(true).find("\"skipped\": \"fingerprint-hit\""),
              std::string::npos);
    // And the warm run reused the persisted entailment entries.
    EXPECT_GT(r2.store.entail_loaded, 0u);
}

TEST_F(IncrTest, MutatingOneSourceReverifiesExactlyThatJob) {
    std::string a = write("a.svlc", kSecure);
    std::string c = write("c.svlc", kModeSwitch);
    std::vector<JobSpec> jobs = {{a, a, "", "", 0}, {c, c, "", "", 0}};

    DriverOptions opts;
    opts.store_dir = store_dir();
    VerificationDriver(opts).run(jobs);

    // Mutate a.svlc into a rejected design.
    write("a.svlc", kRejected);
    VerificationDriver drv(opts);
    BatchReport r = drv.run(jobs);
    ASSERT_EQ(r.results.size(), 2u);
    EXPECT_FALSE(r.results[0].skipped);
    EXPECT_EQ(r.results[0].status, JobStatus::Rejected);
    EXPECT_TRUE(r.results[1].skipped);
    EXPECT_EQ(r.results[1].status, JobStatus::Secure);
    EXPECT_EQ(r.skipped_count(), 1u);
}

TEST_F(IncrTest, CacheDisabledStillSkipsByFingerprint) {
    std::string a = write("a.svlc", kSecure);
    std::vector<JobSpec> jobs = {{a, a, "", "", 0}};
    DriverOptions opts;
    opts.store_dir = store_dir();
    opts.use_cache = false; // verdict store works without the entail cache
    VerificationDriver(opts).run(jobs);
    BatchReport r = VerificationDriver(opts).run(jobs);
    EXPECT_EQ(r.skipped_count(), 1u);
    EXPECT_EQ(r.store.entail_loaded, 0u);
}

TEST_F(IncrTest, ErrorsAndTimeoutsAreNeverPersisted) {
    std::string missing = (dir_ / "missing.svlc").string();
    std::vector<JobSpec> jobs = {{missing, missing, "", "", 0}};
    DriverOptions opts;
    opts.store_dir = store_dir();
    VerificationDriver(opts).run(jobs);
    BatchReport r = VerificationDriver(opts).run(jobs);
    EXPECT_EQ(r.skipped_count(), 0u);
    EXPECT_EQ(r.results[0].status, JobStatus::Error);

    JobSpec slow;
    ASSERT_TRUE(driver::builtin_job("labeled", slow));
    slow.timeout_ms = 1; // guaranteed deadline expiry
    BatchReport t1 = VerificationDriver(opts).run({slow});
    ASSERT_EQ(t1.results[0].status, JobStatus::Timeout);
    BatchReport t2 = VerificationDriver(opts).run({slow});
    EXPECT_FALSE(t2.results[0].skipped); // timeout was not replayed
}

TEST_F(IncrTest, WatchRunsIterationsAndStops) {
    write("a.svlc", kSecure);
    write("b.svlc", kRejected);

    driver::WatchOptions opts;
    opts.driver.store_dir = store_dir();
    opts.interval_ms = 1;
    opts.max_iterations = 2;

    fs::path log = dir_ / "watch.log";
    std::FILE* out = std::fopen(log.string().c_str(), "w");
    ASSERT_NE(out, nullptr);
    int rc = driver::run_watch(dir_.string(), opts, out, out);
    std::fclose(out);
    EXPECT_EQ(rc, 0);

    std::string text;
    ASSERT_TRUE(read_file(log.string(), text));
    EXPECT_NE(text.find("2/2 job(s) dirty"), std::string::npos);
    EXPECT_NE(text.find("[watch #2] clean"), std::string::npos);

    // A missing target is a usage error on the first iteration.
    std::FILE* devnull = std::fopen(log.string().c_str(), "w");
    EXPECT_EQ(driver::run_watch((dir_ / "nope").string(), opts, devnull,
                                devnull),
              2);
    std::fclose(devnull);
}

// --- stat-based dirty detection (racy-stat window) -------------------------

TEST(WatchStat, IdenticalRecentSignatureIsNotTrusted) {
    // A same-size rewrite within the filesystem's timestamp granularity
    // leaves (mtime, size) unchanged; inside the racy window the watcher
    // must fall back to re-hashing instead of declaring the file clean.
    driver::StatSig sig;
    sig.mtime_ns = 1'000'000'000'000;
    sig.size = 64;
    int64_t now = sig.mtime_ns + driver::kStatRacyWindowNs - 1;
    EXPECT_FALSE(driver::stat_proves_unchanged(sig, sig, now));
    // Old enough: the signature alone proves the content unchanged.
    now = sig.mtime_ns + driver::kStatRacyWindowNs;
    EXPECT_TRUE(driver::stat_proves_unchanged(sig, sig, now));
}

TEST(WatchStat, ChangedSignatureOrUnsetPrevIsNeverTrusted) {
    driver::StatSig prev;
    prev.mtime_ns = 5'000'000'000;
    prev.size = 10;
    driver::StatSig cur = prev;
    int64_t old_now = prev.mtime_ns + 10 * driver::kStatRacyWindowNs;

    cur.size = 11;
    EXPECT_FALSE(driver::stat_proves_unchanged(prev, cur, old_now));
    cur = prev;
    cur.mtime_ns += 1;
    EXPECT_FALSE(driver::stat_proves_unchanged(prev, cur, old_now));

    driver::StatSig unset; // mtime_ns = -1: no prior observation
    EXPECT_FALSE(driver::stat_proves_unchanged(unset, prev, old_now));
}

TEST_F(IncrTest, WatchSeesSameSizeSameSecondRewrite) {
    // Regression: two same-length writes inside one mtime tick used to be
    // invisible to the stat-based skip, so the second verdict never
    // updated. kSecure and the broken variant below differ in exactly one
    // byte ('a' -> 'z' makes the assign read an undeclared net).
    std::string broken(kSecure);
    size_t pos = broken.find("assign b = a;");
    ASSERT_NE(pos, std::string::npos);
    broken[pos + std::string("assign b = ").size()] = 'z';
    ASSERT_EQ(broken.size(), std::string(kSecure).size());

    std::string path = write("a.svlc", kSecure);
    driver::StatSig first;
    ASSERT_TRUE(driver::stat_file(path, first));

    // Rewrite immediately and pin mtime to the first observation,
    // simulating a coarse-granularity filesystem tick.
    write("a.svlc", broken);
    fs::last_write_time(
        path, fs::file_time_type(std::chrono::nanoseconds(first.mtime_ns)));
    driver::StatSig second;
    ASSERT_TRUE(driver::stat_file(path, second));
    ASSERT_EQ(first, second); // stat cannot distinguish the rewrite

    // The racy window is what saves us: the mtime is recent, so the
    // signature match must NOT be trusted.
    EXPECT_FALSE(driver::stat_proves_unchanged(
        first, second, driver::file_clock_now_ns()));
}

TEST_F(IncrTest, WatchReverifiesAfterSameSignatureRewrite) {
    // End-to-end: iteration 1 verifies the secure version; mid-poll the
    // file is rewritten same-size with its mtime pinned back (a rewrite
    // within one timestamp tick); iteration 2 must re-read and flip the
    // verdict instead of trusting the unchanged stat signature.
    std::string broken(kSecure);
    size_t pos = broken.find("assign b = a;");
    ASSERT_NE(pos, std::string::npos);
    broken[pos + std::string("assign b = ").size()] = 'z';
    ASSERT_EQ(broken.size(), std::string(kSecure).size());

    std::string path = write("a.svlc", kSecure);
    driver::StatSig first;
    ASSERT_TRUE(driver::stat_file(path, first));

    driver::WatchOptions opts;
    opts.interval_ms = 600;
    opts.max_iterations = 2;
    std::thread writer([&] {
        // Lands inside iteration 1's poll sleep: well after its verify
        // (sub-ms for this module), well before iteration 2.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        write("a.svlc", broken);
        fs::last_write_time(path, fs::file_time_type(std::chrono::nanoseconds(
                                      first.mtime_ns)));
    });

    fs::path log = dir_ / "watch.log";
    std::FILE* out = std::fopen(log.string().c_str(), "w");
    ASSERT_NE(out, nullptr);
    int rc = driver::run_watch(dir_.string(), opts, out, out);
    std::fclose(out);
    writer.join();
    EXPECT_EQ(rc, 0);

    std::string text;
    ASSERT_TRUE(read_file(log.string(), text));
    EXPECT_NE(text.find("(was secure)"), std::string::npos) << text;
}

} // namespace
} // namespace svlc::test
