// Batch-verification driver tests: deterministic aggregation across
// worker counts, cache/no-cache verdict parity, per-job timeout
// isolation, cross-instance memoization, and job discovery.
#include "driver/driver.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace svlc::test {
namespace {

namespace fs = std::filesystem;
using driver::BatchReport;
using driver::DriverOptions;
using driver::JobSpec;
using driver::JobStatus;
using driver::VerificationDriver;

// A fig4-style mode switch: obligations need next-value enumeration.
const char* kModeSwitch = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} rst,
         input com [15:0] {T} decode_out,
         input com [15:0] {U} epc_in);
  wire com {T} mode_switch;
  reg seq [15:0] {U} epc;
  reg seq {T} mode;
  reg seq [15:0] {mode_to_lb(mode)} pc;
  assign mode_switch = decode_out[4];
  always @(seq) begin
    if (rst) pc <= 16'b0;
    else if (mode_switch && (next(mode) == 1'b0)) pc <= 16'h8000;
    else if (mode_switch) pc <= epc;
  end
  always @(seq) begin
    if (mode_switch) mode <= ~mode;
  end
  always @(seq) begin
    epc <= epc_in;
  end
endmodule
)";

// The same dependent-label logic instantiated twice: the second core's
// obligations are the first core's modulo net identity, so canonicalized
// cache keys collide and the entailment cache answers them.
const char* kTwinInstances = R"(
lattice { level T; level U; flow T -> U; }
function owner(x:1) { 0 -> T; default -> U; }
module core(input com {T} handoff, input com [7:0] {U} u_step,
            output com [7:0] {U} value);
  reg seq {T} who;
  reg seq [7:0] {owner(who)} count;
  assign value = count;
  always @(seq) begin
    if (handoff) who <= ~who;
  end
  always @(seq) begin
    if (handoff && (who == 1'b1) && (next(who) == 1'b0)) count <= 8'h00;
    else if (who == 1'b1) count <= count + u_step;
    else count <= count + 8'h01;
  end
endmodule
module twin(input com {T} h, input com [7:0] {U} s0,
            input com [7:0] {U} s1, output com [7:0] {U} v0,
            output com [7:0] {U} v1);
  core a(.handoff(h), .u_step(s0), .value(v0));
  core b(.handoff(h), .u_step(s1), .value(v1));
endmodule
)";

const char* kIllegal = R"(
lattice { level T; level U; flow T -> U; }
module bad(input com {U} dirty);
  reg seq {T} creg;
  always @(seq) begin
    creg <= dirty;
  end
endmodule
)";

const char* kTrivial = R"(
lattice { level T; level U; flow T -> U; }
module ok(input com {T} a, output com {T} b);
  assign b = a;
endmodule
)";

std::vector<JobSpec> mixed_jobs() {
    std::vector<JobSpec> jobs;
    jobs.push_back({"mode_switch", "", kModeSwitch, "", 0});
    jobs.push_back({"twin", "", kTwinInstances, "", 0});
    jobs.push_back({"illegal", "", kIllegal, "", 0});
    jobs.push_back({"trivial", "", kTrivial, "", 0});
    jobs.push_back({"twin_again", "", kTwinInstances, "", 0});
    jobs.push_back({"mode_switch_top", "", kModeSwitch, "m", 0});
    return jobs;
}

// (a) Batch results must be byte-identical for --jobs 1 and --jobs 8.
TEST(Driver, DeterministicAcrossWorkerCounts) {
    auto jobs = mixed_jobs();

    DriverOptions seq_opts;
    seq_opts.jobs = 1;
    VerificationDriver sequential(seq_opts);
    BatchReport r1 = sequential.run(jobs);

    DriverOptions par_opts;
    par_opts.jobs = 8;
    VerificationDriver parallel(par_opts);
    BatchReport r8 = parallel.run(jobs);

    EXPECT_EQ(r1.to_json(false), r8.to_json(false));
    EXPECT_EQ(r1.summary(), r8.summary());
    ASSERT_EQ(r1.results.size(), jobs.size());
    EXPECT_EQ(r1.results[0].status, JobStatus::Secure);
    EXPECT_EQ(r1.results[2].status, JobStatus::Rejected);
    EXPECT_EQ(r1.results[3].status, JobStatus::Secure);
}

// (b) The cache must never change a verdict: per-obligation EntailStatus
// is identical with the cache off, cold, and warm.
TEST(Driver, CacheVerdictParity) {
    Compiled c = compile(kTwinInstances);
    ASSERT_TRUE(c.ok()) << c.errors();

    DiagnosticEngine d_off;
    check::CheckOptions opts_off;
    auto off = check::check_design(*c.design, d_off, opts_off);

    solver::EntailCache cache;
    check::CheckOptions opts_on;
    opts_on.solver.cache = &cache;
    DiagnosticEngine d_cold;
    auto cold = check::check_design(*c.design, d_cold, opts_on);
    DiagnosticEngine d_warm;
    auto warm = check::check_design(*c.design, d_warm, opts_on);

    ASSERT_EQ(off.obligations.size(), cold.obligations.size());
    ASSERT_EQ(off.obligations.size(), warm.obligations.size());
    for (size_t i = 0; i < off.obligations.size(); ++i) {
        EXPECT_EQ(off.obligations[i].result.status,
                  cold.obligations[i].result.status)
            << "obligation " << i;
        EXPECT_EQ(off.obligations[i].result.status,
                  warm.obligations[i].result.status)
            << "obligation " << i;
        EXPECT_EQ(off.obligations[i].result.candidates,
                  warm.obligations[i].result.candidates)
            << "obligation " << i;
    }
    EXPECT_EQ(off.ok, cold.ok);
    EXPECT_EQ(off.failed, warm.failed);
    // The twin's second instance repeats the first's canonical queries.
    EXPECT_GT(cold.solver_stats.cache_hits, 0u);
    // A warm cache answers every enumeration-class query.
    EXPECT_EQ(warm.solver_stats.enumerations, 0u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

// (c) A job that exceeds its deadline is reported as a timeout without
// taking the rest of the batch down.
TEST(Driver, TimeoutIsolation) {
    std::vector<JobSpec> jobs;
    JobSpec slow;
    ASSERT_TRUE(driver::builtin_job("labeled", slow));
    slow.timeout_ms = 40; // the labeled CPU needs seconds, cold
    jobs.push_back(std::move(slow));
    jobs.push_back({"trivial", "", kTrivial, "", 0});
    jobs.push_back({"mode_switch", "", kModeSwitch, "", 0});

    DriverOptions opts;
    opts.jobs = 2;
    VerificationDriver drv(opts);
    BatchReport report = drv.run(jobs);

    ASSERT_EQ(report.results.size(), 3u);
    EXPECT_EQ(report.results[0].status, JobStatus::Timeout);
    EXPECT_EQ(report.results[1].status, JobStatus::Secure);
    EXPECT_EQ(report.results[2].status, JobStatus::Secure);
    EXPECT_FALSE(report.all_ran());
    EXPECT_EQ(report.count(JobStatus::Timeout), 1u);
}

// Warm runs over the same driver reuse the cache across run() calls.
TEST(Driver, CacheStaysWarmAcrossRuns) {
    std::vector<JobSpec> jobs;
    jobs.push_back({"mode_switch", "", kModeSwitch, "", 0});

    VerificationDriver drv;
    BatchReport cold = drv.run(jobs);
    BatchReport warm = drv.run(jobs);

    EXPECT_GT(warm.cache.hits, 0u);
    EXPECT_EQ(warm.cache.hit_rate(), 1.0);
    // Verdicts unchanged by cache temperature.
    EXPECT_EQ(cold.to_json(false), warm.to_json(false));
}

TEST(Driver, RejectedDesignStillReportsDiagnostics) {
    std::vector<JobSpec> jobs;
    jobs.push_back({"illegal", "", kIllegal, "", 0});
    VerificationDriver drv;
    BatchReport report = drv.run(jobs);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_EQ(report.results[0].status, JobStatus::Rejected);
    EXPECT_EQ(report.results[0].failed, 1u);
    EXPECT_NE(report.results[0].diagnostics.find("illegal flow"),
              std::string::npos);
    // The full JSON embeds the rendered diagnostics, escaped.
    std::string json = report.to_json(true);
    EXPECT_NE(json.find("\"status\": \"rejected\""), std::string::npos);
    EXPECT_NE(json.find("svlc-batch-report/v2"), std::string::npos);
}

TEST(Driver, UnreadableFileIsErrorNotCrash) {
    std::vector<JobSpec> jobs;
    jobs.push_back({"missing", "/nonexistent/no_such_file.svlc", "", "", 0});
    jobs.push_back({"trivial", "", kTrivial, "", 0});
    VerificationDriver drv;
    BatchReport report = drv.run(jobs);
    EXPECT_EQ(report.results[0].status, JobStatus::Error);
    EXPECT_EQ(report.results[1].status, JobStatus::Secure);
    EXPECT_FALSE(report.all_ran());
}

class DriverDiscoveryTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("svlc_driver_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + std::to_string(counter_++));
        fs::create_directories(dir_ / "nested");
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    void write(const fs::path& rel, const std::string& text) {
        std::ofstream out(dir_ / rel);
        out << text;
    }
    fs::path dir_;
    static int counter_;
};
int DriverDiscoveryTest::counter_ = 0;

TEST_F(DriverDiscoveryTest, DirectoryGlobSortedRecursive) {
    write("b.svlc", kTrivial);
    write("a.svlc", kModeSwitch);
    write("nested/c.svlc", kTwinInstances);
    write("ignored.txt", "not a design");

    std::vector<JobSpec> jobs;
    std::string error;
    ASSERT_TRUE(driver::jobs_from_directory(dir_.string(), jobs, error))
        << error;
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(fs::path(jobs[0].path).filename(), "a.svlc");
    EXPECT_EQ(fs::path(jobs[1].path).filename(), "b.svlc");
    EXPECT_EQ(fs::path(jobs[2].path).filename(), "c.svlc");
}

TEST_F(DriverDiscoveryTest, ManifestPathsBuiltinsAndTops) {
    write("a.svlc", kModeSwitch);
    write("nested/c.svlc", kTwinInstances);
    write("jobs.txt", "# corpus\n"
                      "a.svlc top=m\n"
                      "nested/c.svlc timeout=120000\n"
                      "builtin:baseline\n"
                      "\n");

    std::vector<JobSpec> jobs;
    std::string error;
    ASSERT_TRUE(driver::jobs_from_manifest((dir_ / "jobs.txt").string(),
                                           jobs, error))
        << error;
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].top, "m");
    EXPECT_EQ(jobs[0].timeout_ms, 0u);
    EXPECT_TRUE(jobs[1].source.empty());
    EXPECT_EQ(jobs[1].timeout_ms, 120000u);
    EXPECT_EQ(jobs[2].name, "builtin:baseline");
    EXPECT_FALSE(jobs[2].source.empty());

    // The whole manifest runs green end to end.
    VerificationDriver drv;
    BatchReport report = drv.run(jobs);
    EXPECT_TRUE(report.all_ran());
    EXPECT_EQ(report.count(JobStatus::Secure), 3u);
}

TEST_F(DriverDiscoveryTest, ManifestRejectsUnknownAttribute) {
    write("jobs.txt", "a.svlc frobnicate=1\n");
    std::vector<JobSpec> jobs;
    std::string error;
    EXPECT_FALSE(driver::jobs_from_manifest((dir_ / "jobs.txt").string(),
                                            jobs, error));
    EXPECT_NE(error.find("frobnicate"), std::string::npos);

    write("jobs.txt", "a.svlc timeout=soon\n");
    jobs.clear();
    EXPECT_FALSE(driver::jobs_from_manifest((dir_ / "jobs.txt").string(),
                                            jobs, error));
    EXPECT_NE(error.find("soon"), std::string::npos);
}

TEST(Driver, CollectJobsDispatch) {
    std::vector<JobSpec> jobs;
    std::string error;
    ASSERT_TRUE(driver::collect_jobs("builtin:quad", jobs, error)) << error;
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].name, "builtin:quad");

    jobs.clear();
    EXPECT_FALSE(driver::collect_jobs("builtin:bogus", jobs, error));

    EXPECT_EQ(driver::builtin_cpu_jobs().size(), 4u);
}

} // namespace
} // namespace svlc::test
