// Cross-cutting integration tests: VCD tracing, the staged-label pipeline
// family (the paper's "pipeline the labels" mode-switch design choice),
// kernel context save/restore through memory (paper footnote 2), and
// noninterference property sweeps over parameterized design families.
#include "proc/assembler.hpp"
#include "proc/testbench.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "test_util.hpp"
#include "verify/noninterference.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace svlc::test {
namespace {

// ---------------------------------------------------------------------------
// VCD tracing
// ---------------------------------------------------------------------------

TEST(Vcd, EmitsHeaderValuesAndLabelCompanions) {
    auto c = compile(policy_header() + R"(
module m(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (go && (mode == 1'b1) && (next(mode) == 1'b0)) r <= 8'h0;
    else r <= r + 8'h1;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    std::ostringstream os;
    sim::VcdWriter vcd(*c.design, os,
                       {c.design->find_net("mode"), c.design->find_net("r")});
    vcd.begin();
    sim.set_input("go", 0);
    for (int i = 0; i < 3; ++i) {
        sim.step();
        vcd.sample(sim);
    }
    sim.set_input("go", 1);
    sim.step();
    vcd.sample(sim);
    std::string out = os.str();
    EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1"), std::string::npos);
    EXPECT_NE(out.find("$var wire 8"), std::string::npos);
    // Dependent label gets a companion signal.
    EXPECT_NE(out.find("r__label"), std::string::npos);
    // Time markers present.
    EXPECT_NE(out.find("#1"), std::string::npos);
    EXPECT_NE(out.find("#4"), std::string::npos);
    // The label change to U (level id 1) must appear after the flip.
    EXPECT_NE(out.find("b00000001 "), std::string::npos);
}

TEST(Vcd, OnlyChangesAreDumped) {
    auto c = compile(R"(
module m(input com {T} unused);
  reg seq [3:0] {T} stuck = 4'h5;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    std::ostringstream os;
    sim::VcdWriter vcd(*c.design, os, {c.design->find_net("stuck")});
    vcd.begin();
    for (int i = 0; i < 5; ++i) {
        sim.step();
        vcd.sample(sim);
    }
    std::string out = os.str();
    // The value line b0101 appears exactly once (first sample), despite
    // five samples.
    size_t first = out.find("b0101");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("b0101", first + 1), std::string::npos);
}

// ---------------------------------------------------------------------------
// Staged labels: "pipeline the labels along with the regular pipeline
// registers" (§2.1, design choice 1)
// ---------------------------------------------------------------------------

std::string staged_pipeline(int stages, bool drop_one_mode_stage) {
    std::ostringstream os;
    os << policy_header();
    os << "module staged(input com {T} m_in, input com [15:0] "
          "{mode_to_lb(m_in)} d_in);\n";
    for (int i = 0; i < stages; ++i) {
        os << "  reg seq {T} m" << i << ";\n";
        os << "  reg seq [15:0] {mode_to_lb(m" << i << ")} d" << i << ";\n";
    }
    os << "  always @(seq) begin\n";
    os << "    m0 <= m_in;\n    d0 <= d_in;\n";
    for (int i = 1; i < stages; ++i) {
        // The broken variant forwards data one stage but not its mode
        // bit, so the data's label no longer travels with it.
        if (drop_one_mode_stage && i == stages / 2)
            os << "    m" << i << " <= m" << i << ";\n";
        else
            os << "    m" << i << " <= m" << i - 1 << ";\n";
        os << "    d" << i << " <= d" << i - 1 << ";\n";
    }
    os << "  end\nendmodule\n";
    return os.str();
}

class StagedLabels : public ::testing::TestWithParam<int> {};

TEST_P(StagedLabels, PipeliningTheLabelsTypechecks) {
    Compiled c;
    auto result = check_source(staged_pipeline(GetParam(), false), c);
    EXPECT_TRUE(result.ok) << c.errors();
}

TEST_P(StagedLabels, DroppingAModeStageIsCaught) {
    Compiled c;
    auto result = check_source(staged_pipeline(GetParam(), true), c);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok)
        << "a data register whose label-stage is stalled must not accept "
           "data from the moving stage";
}

INSTANTIATE_TEST_SUITE_P(Depths, StagedLabels, ::testing::Values(2, 3, 5, 8));

TEST(StagedLabels, SimulationLabelsTravelWithData) {
    auto c = compile(staged_pipeline(4, false));
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    const auto& lat = c.design->policy.lattice();
    // Inject one untrusted beat, then trusted beats; the U label must
    // march down the stages one per cycle.
    sim.set_input("m_in", 1);
    sim.set_input("d_in", 0xAAAA);
    sim.step();
    sim.set_input("m_in", 0);
    sim.set_input("d_in", 0x1111);
    for (int stage = 0; stage < 4; ++stage) {
        // The untrusted beat is currently in `stage`; its label must have
        // marched there with it, and every other stage must be trusted.
        for (int other = 0; other < 4; ++other) {
            hir::NetId d = c.design->find_net("d" + std::to_string(other));
            EXPECT_EQ(lat.name(sim.current_label(d)),
                      other == stage ? "U" : "T")
                << "beat at stage " << stage << ", observed stage " << other;
        }
        hir::NetId d = c.design->find_net("d" + std::to_string(stage));
        EXPECT_EQ(sim.get(d).value(), 0xAAAAu) << "stage " << stage;
        sim.step();
    }
}

// ---------------------------------------------------------------------------
// Kernel context save/restore through memory (paper footnote 2)
// ---------------------------------------------------------------------------

TEST(Processor, KernelContextSaveRestoreThroughMemory) {
    // "A more realistic implementation ... might save the contents of the
    // GPRs in the region of memory reserved for storing context. The
    // corresponding SYSRET instruction would then restore this saved
    // context" — the kernel stages the endorsed args through its own
    // (trusted) memory bank and rebuilds user state before returning.
    const char* kernel = R"(
        sysret
boot:   j boot
        .org 0x200
        # save the endorsed args into kernel context memory
        addiu $9, $0, 0x80
        sw $4, 0($9)
        sw $5, 4($9)
        # do kernel work that clobbers them
        addiu $4, $0, 0
        addiu $5, $0, 0
        addu $8, $4, $5
        # restore the context and return
        lw $4, 0($9)
        lw $5, 4($9)
        sysret
khalt:  j khalt
)";
    const char* user = R"(
        addiu $4, $0, 0x21
        addiu $5, $0, 0x14
        syscall
        addu $6, $4, $5      # args restored by the kernel: 0x35
spin:   j spin
)";
    proc::TestVector vec;
    vec.name = "context_save_restore";
    vec.kernel_asm = kernel;
    vec.user_asm = user;
    std::string result =
        proc::run_vector(*proc::labeled_cpu_design(), vec);
    EXPECT_EQ(result, "");

    // And the golden model agrees on the architectural intent.
    proc::GoldenCpu g;
    g.load_kernel(proc::assemble(kernel).words);
    g.load_user(proc::assemble(user).words);
    proc::golden_run_to_spin(g, 1000);
    EXPECT_EQ(g.reg(6), 0x35u);
    EXPECT_EQ(g.dmem_k(32), 0x21u); // saved context in kernel memory
}

// ---------------------------------------------------------------------------
// Noninterference property sweep over a parameterized design family
// ---------------------------------------------------------------------------

std::string bank_design(int regs) {
    std::ostringstream os;
    os << policy_header();
    os << "module bank(input com {T} go, input com [7:0] {U} din);\n";
    os << "  reg seq {T} mode;\n";
    os << "  always @(seq) begin\n    if (go) mode <= ~mode;\n  end\n";
    for (int i = 0; i < regs; ++i) {
        os << "  reg seq [7:0] {mode_to_lb(mode)} r" << i << ";\n";
        os << "  always @(seq) begin\n";
        os << "    if (go && (mode == 1'b1) && (next(mode) == 1'b0)) r" << i
           << " <= 8'h0;\n";
        os << "    else if (mode == 1'b1) r" << i << " <= din + 8'd" << i
           << ";\n";
        os << "  end\n";
    }
    os << "endmodule\n";
    return os.str();
}

class TypedImpliesNI : public ::testing::TestWithParam<int> {};

TEST_P(TypedImpliesNI, WellTypedBanksShowNoDivergence) {
    Compiled c;
    auto result = check_source(bank_design(GetParam()), c);
    ASSERT_TRUE(result.ok) << c.errors();
    verify::NIConfig cfg;
    cfg.observer = *c.design->policy.lattice().find("T");
    cfg.cycles = 96;
    cfg.trials = 4;
    cfg.seed = 1000 + static_cast<uint64_t>(GetParam());
    auto ni = verify::test_noninterference(*c.design, cfg);
    EXPECT_TRUE(ni.ok) << (ni.violations.empty()
                               ? ""
                               : ni.violations[0].description);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TypedImpliesNI, ::testing::Values(1, 3, 6));

} // namespace
} // namespace svlc::test
