// Verilog emission: structural checks plus round-trip equivalence — the
// emitted (label-erased) design must simulate cycle-for-cycle identically
// to the original, which is the paper's requirement that the synthesized
// hardware match the HDL code (unlike dynamic clearing).
#include "codegen/verilog.hpp"
#include "proc/testbench.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>

namespace svlc::test {
namespace {

const char* kModeSwitchDesign = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module msw(input com {T} rst, input com {T} go,
           input com [15:0] {U} uin, output com [15:0] {U} out);
  reg seq {T} mode;
  reg seq [15:0] {U} epc;
  reg seq [15:0] {mode_to_lb(mode)} pc;
  assign out = epc;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (rst) pc <= 16'b0;
    else if (go && (next(mode) == 1'b0)) pc <= 16'h8000;
    else if (go) pc <= epc;
    else if (mode == 1'b1) pc <= uin;
  end
  always @(seq) begin
    epc <= uin;
  end
endmodule
)";

TEST(Codegen, EmitsStructurallySensibleVerilog) {
    auto c = compile(kModeSwitchDesign);
    ASSERT_TRUE(c.ok()) << c.errors();
    DiagnosticEngine diags;
    std::string v = codegen::emit_verilog(*c.design, diags);
    EXPECT_FALSE(diags.has_errors());
    EXPECT_NE(v.find("module msw("), std::string::npos);
    EXPECT_NE(v.find("input wire clk"), std::string::npos);
    EXPECT_NE(v.find("pc__next"), std::string::npos);
    EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
    // Labels and security syntax must be gone.
    EXPECT_EQ(v.find("{T}"), std::string::npos);
    EXPECT_EQ(v.find("mode_to_lb"), std::string::npos);
    EXPECT_EQ(v.find("next("), std::string::npos);
    EXPECT_EQ(v.find("endorse"), std::string::npos);
}

TEST(Codegen, RoundTripSimulationEquivalence) {
    auto original = compile(kModeSwitchDesign);
    ASSERT_TRUE(original.ok()) << original.errors();

    DiagnosticEngine ediags;
    codegen::EmitOptions opts;
    opts.dialect = codegen::Dialect::SvlcCompat;
    std::string verilog = codegen::emit_verilog(*original.design, ediags, opts);
    ASSERT_FALSE(ediags.has_errors());

    auto compiled = compile(verilog);
    ASSERT_TRUE(compiled.ok()) << compiled.errors() << "\n" << verilog;

    sim::Simulator a(*original.design);
    sim::Simulator b(*compiled.design);
    std::mt19937_64 rng(42);
    for (int cycle = 0; cycle < 500; ++cycle) {
        uint64_t rst = (cycle == 0) ? 1 : 0;
        uint64_t go = rng() & 1;
        uint64_t uin = rng() & 0xFFFF;
        a.set_input("rst", rst);
        b.set_input("rst", rst);
        a.set_input("go", go);
        b.set_input("go", go);
        a.set_input("uin", uin);
        b.set_input("uin", uin);
        a.step();
        b.step();
        ASSERT_EQ(a.get("pc").value(), b.get("pc").value())
            << "cycle " << cycle;
        ASSERT_EQ(a.get("mode").value(), b.get("mode").value())
            << "cycle " << cycle;
        a.settle();
        b.settle();
        ASSERT_EQ(a.get("out").value(), b.get("out").value())
            << "cycle " << cycle;
    }
}

TEST(Codegen, RoundTripWithArraysAndHierarchy) {
    const char* src = R"(
module regfile(input com [1:0] {T} waddr, input com [7:0] {T} wdata,
               input com {T} we, input com [1:0] {T} raddr,
               output com [7:0] {T} rdata);
  reg seq [7:0] {T} mem[0:3];
  assign rdata = mem[raddr];
  always @(seq) begin
    if (we) mem[waddr] <= wdata;
  end
endmodule
module top(input com [1:0] {T} a, input com [7:0] {T} d, input com {T} w,
           output com [7:0] {T} q);
  regfile rf(.waddr(a), .wdata(d), .we(w), .raddr(a), .rdata(q));
endmodule
)";
    auto original = compile(src, "top");
    ASSERT_TRUE(original.ok()) << original.errors();
    DiagnosticEngine ediags;
    codegen::EmitOptions opts;
    opts.dialect = codegen::Dialect::SvlcCompat;
    std::string verilog = codegen::emit_verilog(*original.design, ediags, opts);
    ASSERT_FALSE(ediags.has_errors()) << verilog;
    auto compiled = compile(verilog);
    ASSERT_TRUE(compiled.ok()) << compiled.errors() << "\n" << verilog;

    sim::Simulator a(*original.design);
    sim::Simulator b(*compiled.design);
    std::mt19937_64 rng(7);
    for (int cycle = 0; cycle < 200; ++cycle) {
        uint64_t addr = rng() & 3, data = rng() & 0xFF, we = rng() & 1;
        for (auto* s : {&a, &b}) {
            s->set_input("a", addr);
            s->set_input("d", data);
            s->set_input("w", we);
            s->step();
            s->settle();
        }
        ASSERT_EQ(a.get("q").value(), b.get("q").value()) << "cycle " << cycle;
    }
}

TEST(Codegen, InitializersSurvive) {
    auto c = compile(R"(
module m(input com {T} unused);
  reg seq [15:0] {T} r = 16'hCAFE;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    DiagnosticEngine diags;
    codegen::EmitOptions opts;
    opts.dialect = codegen::Dialect::SvlcCompat;
    std::string v = codegen::emit_verilog(*c.design, diags, opts);
    EXPECT_NE(v.find("16'hcafe"), std::string::npos) << v;
}

TEST(Codegen, HierarchicalNamesAreMangled) {
    const char* src = R"(
module inner(input com {T} a, output com {T} y);
  assign y = ~a;
endmodule
module outer(input com {T} x, output com {T} z);
  inner u0(.a(x), .y(z));
endmodule
)";
    auto c = compile(src, "outer");
    ASSERT_TRUE(c.ok()) << c.errors();
    DiagnosticEngine diags;
    std::string v = codegen::emit_verilog(*c.design, diags);
    EXPECT_NE(v.find("u0_y"), std::string::npos);
    EXPECT_EQ(v.find("u0.y"), std::string::npos);
}


TEST(Codegen, StrictDialectDeclaresProceduralTargetsAsReg) {
    auto c = compile(R"(
module m(input com {T} sel, input com [7:0] {T} a);
  wire com [7:0] {T} out;
  always @(*) begin
    if (sel) out = a;
    else out = 8'h0;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    DiagnosticEngine diags;
    codegen::EmitOptions strict;
    strict.dialect = codegen::Dialect::Verilog2001;
    std::string v = codegen::emit_verilog(*c.design, diags, strict);
    // Procedurally-assigned nets must be declared reg in Verilog-2001.
    EXPECT_NE(v.find("reg [7:0] out;"), std::string::npos) << v;
    EXPECT_NE(v.find("always @* begin"), std::string::npos) << v;

    codegen::EmitOptions compat;
    compat.dialect = codegen::Dialect::SvlcCompat;
    std::string v2 = codegen::emit_verilog(*c.design, diags, compat);
    EXPECT_NE(v2.find("wire [7:0] out;"), std::string::npos) << v2;
}

TEST(Codegen, FullProcessorRoundTripRunsSyscallProgram) {
    // The complete flow the paper's compiler supports: labeled pipeline ->
    // plain Verilog -> (re)compile -> the syscall-with-arguments program
    // behaves identically to the golden ISA model.
    DiagnosticEngine ediags;
    codegen::EmitOptions opts;
    opts.dialect = codegen::Dialect::SvlcCompat;
    std::string verilog =
        codegen::emit_verilog(*proc::labeled_cpu_design(), ediags, opts);
    ASSERT_FALSE(ediags.has_errors());

    auto compiled = compile(verilog);
    ASSERT_TRUE(compiled.ok()) << compiled.errors();

    proc::TestVector vec;
    vec.name = "roundtrip_syscall";
    vec.kernel_asm = R"(
        sysret
boot:   j boot
        .org 0x200
        addu $8, $4, $5
        sysret
khalt:  j khalt
)";
    vec.user_asm = R"(
        addiu $4, $0, 21
        addiu $5, $0, 14
        syscall
        addu $6, $4, $5
spin:   j spin
)";
    EXPECT_EQ(proc::run_vector(*compiled.design, vec), "");
}

} // namespace
} // namespace svlc::test
