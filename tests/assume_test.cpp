// The assume() pragma: "some code was refactored to convince the type
// system that certain statements are true when the built-in analysis
// cannot automatically infer the invariants" (§3.3). assume() states such
// an invariant: the checker adds it to the constraint context; the
// simulator checks it dynamically.
#include "sim/simulator.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace svlc::test {
namespace {

// Two mode registers that are equal by system-level construction, but
// whose equality the equation analysis cannot derive (each holds its own
// value unless `sync` loads both from the same input — their histories,
// not their update functions, make them equal).
std::string twin_modes(bool with_assume) {
    std::string src = policy_header() + R"(
module m(input com {T} sync, input com {T} x, input com [7:0] {U} udata);
  reg seq {T} mode_a;
  reg seq {T} mode_b;
  reg seq [7:0] {mode_to_lb(mode_a)} r;
  always @(seq) begin
    if (sync) mode_a <= x;
  end
  always @(seq) begin
    if (sync) mode_b <= x;
  end
  always @(seq) begin
)";
    if (with_assume)
        src += "    assume(mode_a == mode_b);\n";
    src += R"(
    if (sync && (mode_a == 1'b1) && (next(mode_a) == 1'b0))
      r <= 8'h0;   // clear on the U -> T upgrade (hold obligation)
    else if (!sync && (mode_b == 1'b1)) r <= udata;
  end
endmodule
)";
    return src;
}

TEST(Assume, InvariantEnablesAProofTheAnalysisCannotFind) {
    // Without the invariant: the guard speaks about mode_b but the label
    // depends on mode_a — unprovable.
    Compiled c1;
    auto without = check_source(twin_modes(false), c1);
    ASSERT_TRUE(c1.design != nullptr);
    EXPECT_FALSE(without.ok);

    // With assume(mode_a == mode_b) the flow is provable.
    Compiled c2;
    auto with = check_source(twin_modes(true), c2);
    EXPECT_TRUE(with.ok) << c2.errors();
}

TEST(Assume, SimulatorChecksTheStatedInvariant) {
    auto c = compile(twin_modes(true));
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("sync", 1);
    sim.set_input("x", 1);
    sim.run(3);
    EXPECT_TRUE(sim.violations().empty());
    // Violate the invariant through a backdoor poke: the monitor fires.
    sim.set_input("sync", 0);
    sim.poke("mode_a", 0);
    sim.step();
    EXPECT_FALSE(sim.violations().empty());
}

TEST(Assume, ScopedToTheRestOfItsBlock) {
    // An assume only justifies statements after it on the same path.
    const char* src = R"(
lattice { level T; level U; flow T -> U; }
function lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} c, input com [7:0] {U} u);
  reg seq {T} g;
  reg seq [7:0] {lb(g)} early;
  reg seq [7:0] {lb(g)} late;
  always @(seq) begin
    early <= u;          // BEFORE the assume: must fail
    assume(g == 1'b1);
    late <= u;           // AFTER: justified (g stays 1: no driver)
  end
endmodule
)";
    Compiled c;
    auto result = check_source(src, c);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok);
    size_t early_failures = 0, late_failures = 0;
    for (const auto& ob : result.obligations) {
        if (ob.result.proven())
            continue;
        const std::string& name = c.design->net(ob.target).name;
        if (name == "early")
            ++early_failures;
        if (name == "late")
            ++late_failures;
    }
    EXPECT_EQ(early_failures, 1u);
    EXPECT_EQ(late_failures, 0u) << c.errors();
}

TEST(Assume, DoesNotLeakAcrossSiblingBranches) {
    const char* src = R"(
lattice { level T; level U; flow T -> U; }
function lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} c, input com [7:0] {U} u);
  reg seq {T} g;
  reg seq [7:0] {lb(g)} r;
  always @(seq) begin
    if (c) begin
      assume(g == 1'b1);
    end
    else begin
      r <= u;            // the assume above must not apply here
    end
  end
endmodule
)";
    Compiled c;
    auto result = check_source(src, c);
    ASSERT_TRUE(c.design != nullptr);
    EXPECT_FALSE(result.ok) << "assume in the then-branch must not justify "
                               "the else-branch write";
}

} // namespace
} // namespace svlc::test
