// End-to-end tests for the `svlc serve` daemon: an in-process Server on
// its own thread, real clients over the Unix socket. Covers the
// acceptance bar of the serve subsystem:
//   * a repeated verify of an unchanged job is a session hit — zero
//     re-elaboration, zero solver calls — and its rendered outputs are
//     byte-identical to an in-process `svlc check`,
//   * invalidate forces a re-verify,
//   * concurrent clients on different sessions never observe
//     interleaved frames,
//   * didChange pushes LSP-flavored diagnostics,
//   * graceful shutdown flushes the store so a later cold
//     `svlc batch --store` warm-skips, and
//   * --idle-timeout exits on its own.
#include "serve/client.hpp"
#include "serve/server.hpp"

#include "driver/driver.hpp"
#include "pipeline/compilation.hpp"
#include "support/fsutil.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#ifndef SVLC_HDL_DIR
#define SVLC_HDL_DIR ""
#endif

namespace svlc::test {
namespace {

namespace fs = std::filesystem;
using serve::Client;
using serve::RpcMessage;
using serve::ServeOptions;
using serve::Server;

const char* kSecureSrc = R"(
lattice { level T; level U; flow T -> U; }
module ok(input com {T} a, output com {T} b);
  assign b = a;
endmodule
)";

const char* kRejectedSrc = R"(
lattice { level T; level U; flow T -> U; }
module bad(input com {U} dirty);
  reg seq {T} creg;
  always @(seq) begin
    creg <= dirty;
  end
endmodule
)";

std::string unique_socket(const char* tag) {
    static std::atomic<int> counter{0};
    return (fs::temp_directory_path() /
            ("svlc_serve_test_" + std::to_string(::getpid()) + "_" + tag +
             "_" + std::to_string(counter++) + ".sock"))
        .string();
}

/// Server on a background thread; stopped and joined on destruction.
struct TestServer {
    Server server;
    std::thread thread;

    explicit TestServer(ServeOptions opts) : server(std::move(opts)) {}
    ~TestServer() { stop(); }

    bool start() {
        std::string error;
        if (!server.start(error)) {
            ADD_FAILURE() << "server start: " << error;
            return false;
        }
        thread = std::thread([this] { server.run(); });
        return true;
    }
    void stop() {
        server.request_stop();
        if (thread.joinable())
            thread.join();
    }
};

ServeOptions test_options(const std::string& socket) {
    ServeOptions opts;
    opts.socket_path = socket;
    opts.install_signal_handlers = false;
    return opts;
}

JsonValue call_ok(Client& client, const std::string& method,
                  const JsonValue& params,
                  std::vector<RpcMessage>* notifications = nullptr) {
    RpcMessage response;
    std::string error;
    EXPECT_TRUE(client.call(method, params, response, error, notifications))
        << method << ": " << error;
    EXPECT_TRUE(response.has_result)
        << method << " errored: " << response.error_message;
    return response.result;
}

JsonValue verify_params(const std::string& name, const std::string& source) {
    JsonValue params = JsonValue::object();
    params.set("name", JsonValue(name));
    params.set("source", JsonValue(source));
    return params;
}

TEST(Serve, WarmHitIsByteIdenticalToInProcessCheck) {
    std::string file = std::string(SVLC_HDL_DIR) + "/shared_counter.svlc";
    std::string source;
    ASSERT_TRUE(read_file(file, source));

    TestServer ts(test_options(unique_socket("warm")));
    ASSERT_TRUE(ts.start());

    // The in-process reference: exactly what `svlc check <file>` renders.
    pipeline::Compilation comp;
    comp.load_text(source, file);
    const check::CheckResult* res = comp.check();
    ASSERT_NE(res, nullptr);
    std::string want_human = pipeline::check_human_summary(comp, *res);
    std::string want_report = pipeline::check_report_json(comp, *res, file);
    std::string want_diags = comp.render_diagnostics();
    std::string want_stats = pipeline::solver_stats_line(res->solver_stats);

    std::string error;
    auto client = Client::connect(ts.server.socket_path(), error);
    ASSERT_TRUE(client.has_value()) << error;

    JsonValue first = call_ok(*client, "verify", verify_params(file, source));
    EXPECT_EQ(first.get_string("status"), "secure");
    EXPECT_FALSE(first.get_bool("cached"));
    EXPECT_EQ(first.get_string("human"), want_human);
    EXPECT_EQ(first.get_string("report"), want_report);
    EXPECT_EQ(first.get_string("diagnostics"), want_diags);
    EXPECT_EQ(first.get_string("stats_line"), want_stats);

    JsonValue before = call_ok(*client, "status", JsonValue::object());

    // Second verify: session hit, identical bytes.
    JsonValue second =
        call_ok(*client, "verify", verify_params(file, source));
    EXPECT_TRUE(second.get_bool("cached"));
    EXPECT_EQ(second.get_string("human"), want_human);
    EXPECT_EQ(second.get_string("report"), want_report);
    EXPECT_EQ(second.get_string("diagnostics"), want_diags);
    EXPECT_EQ(second.get_string("stats_line"), want_stats);
    EXPECT_EQ(second.get_string("fingerprint"),
              first.get_string("fingerprint"));

    // Zero pipeline and zero solver work on the hit: the verify counter
    // did not move and the entailment cache saw no queries at all.
    JsonValue after = call_ok(*client, "status", JsonValue::object());
    EXPECT_EQ(after.find("stats")->get_uint("verifies"),
              before.find("stats")->get_uint("verifies"));
    EXPECT_EQ(after.find("stats")->get_uint("session_hits"),
              before.find("stats")->get_uint("session_hits") + 1);
    EXPECT_EQ(after.find("cache")->get_uint("hits"),
              before.find("cache")->get_uint("hits"));
    EXPECT_EQ(after.find("cache")->get_uint("misses"),
              before.find("cache")->get_uint("misses"));
}

TEST(Serve, RemoteCheckMatchesInProcess) {
    std::string file = std::string(SVLC_HDL_DIR) + "/fig4_mode_switch.svlc";
    std::string source;
    ASSERT_TRUE(read_file(file, source));

    TestServer ts(test_options(unique_socket("remote")));
    ASSERT_TRUE(ts.start());

    pipeline::Compilation comp;
    comp.load_text(source, file);
    const check::CheckResult* res = comp.check();
    ASSERT_NE(res, nullptr);

    serve::RemoteCheckResult remote;
    ASSERT_TRUE(serve::remote_check(ts.server.socket_path(), file, "",
                                    check::CheckOptions{}, remote));
    EXPECT_EQ(remote.human, pipeline::check_human_summary(comp, *res));
    EXPECT_EQ(remote.report_json,
              pipeline::check_report_json(comp, *res, file));
    EXPECT_EQ(remote.diagnostics, comp.render_diagnostics());
    EXPECT_EQ(remote.stats_line,
              pipeline::solver_stats_line(res->solver_stats));

    // And nothing listening → remote_check reports false so the CLI
    // falls back in-process.
    serve::RemoteCheckResult none;
    EXPECT_FALSE(serve::remote_check(unique_socket("nobody"), file, "",
                                     check::CheckOptions{}, none));
}

TEST(Serve, InvalidateForcesReverify) {
    TestServer ts(test_options(unique_socket("inval")));
    ASSERT_TRUE(ts.start());
    std::string error;
    auto client = Client::connect(ts.server.socket_path(), error);
    ASSERT_TRUE(client.has_value()) << error;

    JsonValue params = verify_params("buf.svlc", kSecureSrc);
    EXPECT_FALSE(call_ok(*client, "verify", params).get_bool("cached"));
    EXPECT_TRUE(call_ok(*client, "verify", params).get_bool("cached"));

    JsonValue inv = JsonValue::object();
    inv.set("name", JsonValue("buf.svlc"));
    EXPECT_EQ(call_ok(*client, "invalidate", inv).get_uint("dropped"), 1u);

    // Session gone: the next verify runs the pipeline again.
    EXPECT_FALSE(call_ok(*client, "verify", params).get_bool("cached"));
}

TEST(Serve, DidChangePushesDiagnostics) {
    TestServer ts(test_options(unique_socket("didchange")));
    ASSERT_TRUE(ts.start());
    std::string error;
    auto client = Client::connect(ts.server.socket_path(), error);
    ASSERT_TRUE(client.has_value()) << error;

    std::vector<RpcMessage> notes;
    JsonValue result = call_ok(*client, "didChange",
                               verify_params("edit.svlc", kRejectedSrc),
                               &notes);
    EXPECT_EQ(result.get_string("status"), "rejected");

    ASSERT_EQ(notes.size(), 1u);
    EXPECT_EQ(notes[0].method, "svlc/publishDiagnostics");
    EXPECT_EQ(notes[0].params.get_string("name"), "edit.svlc");
    const JsonValue* diags = notes[0].params.find("diagnostics");
    ASSERT_NE(diags, nullptr);
    ASSERT_GE(diags->size(), 1u);
    const JsonValue& d = diags->items()[0];
    EXPECT_EQ(d.find("severity")->int_val(), 1); // LSP Error
    EXPECT_FALSE(d.get_string("message").empty());
    // 0-based LSP positions within the buffer.
    const JsonValue* start = d.find("range")->find("start");
    ASSERT_NE(start, nullptr);
    EXPECT_GT(start->get_uint("line"), 0u);

    // An edit that fixes the flow re-verifies under the same session.
    std::vector<RpcMessage> notes2;
    JsonValue fixed = call_ok(*client, "didChange",
                              verify_params("edit.svlc", kSecureSrc),
                              &notes2);
    EXPECT_EQ(fixed.get_string("status"), "secure");
    EXPECT_FALSE(fixed.get_bool("cached"));
    ASSERT_EQ(notes2.size(), 1u);
    EXPECT_EQ(notes2[0].params.find("diagnostics")->size(), 0u);
}

TEST(Serve, DidChangeReplaysObligationsAndFiltersPush) {
    // Obligation-granular incrementality through the daemon: with a store
    // configured, an edit that changes bytes but no constraint (comment
    // prepend) re-solves nothing, and the didChange push omits replayed
    // obligations' diagnostics — the client already has them.
    fs::path store =
        fs::temp_directory_path() /
        ("svlc_serve_test_incr_store_" + std::to_string(::getpid()));
    fs::remove_all(store);
    ServeOptions opts = test_options(unique_socket("increplay"));
    opts.store_dir = store.string();
    TestServer ts(std::move(opts));
    ASSERT_TRUE(ts.start());
    std::string error;
    auto client = Client::connect(ts.server.socket_path(), error);
    ASSERT_TRUE(client.has_value()) << error;

    std::vector<RpcMessage> notes;
    JsonValue first = call_ok(*client, "didChange",
                              verify_params("i.svlc", kRejectedSrc), &notes);
    EXPECT_EQ(first.get_string("status"), "rejected");
    uint64_t total = first.get_uint("obligations");
    ASSERT_GT(total, 0u);
    EXPECT_EQ(first.get_uint("obligations_solved"), total);
    EXPECT_EQ(first.get_uint("obligations_replayed"), 0u);
    ASSERT_EQ(notes.size(), 1u);
    ASSERT_GE(notes[0].params.find("diagnostics")->size(), 1u);

    // Comment-prepend edit: same constraints, new bytes. Every proof
    // replays; the push carries nothing the client hasn't seen.
    std::vector<RpcMessage> notes2;
    JsonValue second = call_ok(
        *client, "didChange",
        verify_params("i.svlc", "// touch\n" + std::string(kRejectedSrc)),
        &notes2);
    EXPECT_EQ(second.get_string("status"), "rejected");
    EXPECT_FALSE(second.get_bool("cached")); // bytes changed: not a hit
    EXPECT_EQ(second.get_uint("obligations"), total);
    EXPECT_EQ(second.get_uint("obligations_replayed"), total);
    EXPECT_EQ(second.get_uint("obligations_solved"), 0u);
    ASSERT_EQ(notes2.size(), 1u);
    EXPECT_EQ(notes2[0].params.find("diagnostics")->size(), 0u);
    // The response still carries the full (re-rendered) diagnostics.
    EXPECT_FALSE(second.get_string("diagnostics").empty());

    // Write-through: a cold batch over the store replays the obligations
    // of a renamed (job-fingerprint-missing) copy of the same design.
    ts.stop();
    driver::DriverOptions dopts;
    dopts.store_dir = store.string();
    driver::JobSpec job;
    job.name = "renamed.svlc";
    job.source = kRejectedSrc;
    driver::BatchReport report = driver::VerificationDriver(dopts).run({job});
    EXPECT_EQ(report.skipped_count(), 0u);
    EXPECT_EQ(report.results[0].obligations_replayed, total);
    EXPECT_EQ(report.results[0].obligations_solved, 0u);
    fs::remove_all(store);
}

TEST(Serve, ConcurrentClientsDoNotInterleaveFrames) {
    TestServer ts(test_options(unique_socket("conc")));
    ASSERT_TRUE(ts.start());

    // Two clients on two different sessions, hammering concurrently.
    // Interleaved frames would surface as parse failures or id
    // mismatches inside Client::call.
    auto worker = [&](const std::string& name, const char* src,
                      const std::string& want_status,
                      std::atomic<int>& failures) {
        std::string error;
        auto client = Client::connect(ts.server.socket_path(), error);
        if (!client) {
            ++failures;
            return;
        }
        for (int i = 0; i < 25; ++i) {
            RpcMessage response;
            std::vector<RpcMessage> notes;
            if (!client->call("verify", verify_params(name, src), response,
                              error, &notes) ||
                !response.has_result ||
                response.result.get_string("status") != want_status ||
                notes.size() != 1)
                ++failures;
        }
    };
    std::atomic<int> failures{0};
    std::thread a(worker, "a.svlc", kSecureSrc, "secure",
                  std::ref(failures));
    std::thread b(worker, "b.svlc", kRejectedSrc, "rejected",
                  std::ref(failures));
    a.join();
    b.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(Serve, SessionLruEviction) {
    ServeOptions opts = test_options(unique_socket("lru"));
    opts.max_sessions = 2;
    TestServer ts(std::move(opts));
    ASSERT_TRUE(ts.start());
    std::string error;
    auto client = Client::connect(ts.server.socket_path(), error);
    ASSERT_TRUE(client.has_value()) << error;

    for (const char* name : {"one.svlc", "two.svlc", "three.svlc"})
        call_ok(*client, "verify", verify_params(name, kSecureSrc));
    // Oldest session evicted; re-verifying it is a miss, the newest two
    // are still hits.
    EXPECT_FALSE(call_ok(*client, "verify",
                         verify_params("one.svlc", kSecureSrc))
                     .get_bool("cached"));
    EXPECT_TRUE(call_ok(*client, "verify",
                        verify_params("three.svlc", kSecureSrc))
                    .get_bool("cached"));
}

TEST(Serve, ShutdownFlushesStoreForBatchWarmSkip) {
    std::string file = std::string(SVLC_HDL_DIR) + "/fig4_mode_switch.svlc";
    std::string source;
    ASSERT_TRUE(read_file(file, source));
    fs::path store =
        fs::temp_directory_path() /
        ("svlc_serve_test_store_" + std::to_string(::getpid()));
    fs::remove_all(store);

    {
        ServeOptions opts = test_options(unique_socket("flush"));
        opts.store_dir = store.string();
        TestServer ts(std::move(opts));
        ASSERT_TRUE(ts.start());
        std::string error;
        auto client = Client::connect(ts.server.socket_path(), error);
        ASSERT_TRUE(client.has_value()) << error;
        // The daemon writes the verdict under the same fingerprint a
        // batch job with this name computes.
        call_ok(*client, "verify", verify_params(file, source));
        // Graceful shutdown via the protocol; run() flushes the store.
        call_ok(*client, "shutdown", JsonValue::object());
        ts.thread.join();
        ts.thread = std::thread(); // already joined
    }

    // A cold batch over the same job warm-skips from the flushed store
    // and loads the persisted entailment cache.
    driver::DriverOptions dopts;
    dopts.store_dir = store.string();
    driver::JobSpec job;
    job.name = file;
    job.path = file;
    driver::VerificationDriver drv(dopts);
    driver::BatchReport report = drv.run({job});
    EXPECT_EQ(report.skipped_count(), 1u);
    EXPECT_EQ(report.results[0].status, driver::JobStatus::Secure);
    EXPECT_GT(report.store.entail_loaded, 0u);

    fs::remove_all(store);
}

TEST(Serve, IdleTimeoutExitsOnItsOwn) {
    ServeOptions opts = test_options(unique_socket("idle"));
    opts.idle_timeout_sec = 1;
    Server server(std::move(opts));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    std::atomic<bool> done{false};
    std::thread t([&] {
        server.run();
        done = true;
    });
    for (int i = 0; i < 100 && !done; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(done.load()) << "idle server did not exit";
    t.join();
    // Socket removed on the way out.
    EXPECT_FALSE(net::socket_alive(server.socket_path()));
}

TEST(Serve, SecondServerOnLiveSocketRefused) {
    std::string socket = unique_socket("second");
    TestServer ts(test_options(socket));
    ASSERT_TRUE(ts.start());

    Server other(test_options(socket));
    std::string error;
    EXPECT_FALSE(other.start(error));
    EXPECT_NE(error.find("already listening"), std::string::npos) << error;
    // The running server is unharmed.
    std::string connect_error;
    EXPECT_TRUE(Client::connect(socket, connect_error).has_value())
        << connect_error;
}

TEST(Serve, ProtocolErrors) {
    TestServer ts(test_options(unique_socket("errors")));
    ASSERT_TRUE(ts.start());
    std::string error;
    auto client = Client::connect(ts.server.socket_path(), error);
    ASSERT_TRUE(client.has_value()) << error;

    RpcMessage response;
    ASSERT_TRUE(client->call("no-such-method", JsonValue::object(),
                             response, error));
    EXPECT_TRUE(response.has_error);
    EXPECT_EQ(response.error_code, serve::kErrMethodNotFound);

    // verify without source or file → invalid params.
    ASSERT_TRUE(
        client->call("verify", JsonValue::object(), response, error));
    EXPECT_TRUE(response.has_error);
    EXPECT_EQ(response.error_code, serve::kErrInvalidParams);

    // The connection survives both errors.
    JsonValue status = call_ok(*client, "status", JsonValue::object());
    EXPECT_EQ(status.get_string("schema"), "svlc-serve/v1");
}

} // namespace
} // namespace svlc::test
