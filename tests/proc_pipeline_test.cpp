// RTL pipeline validation (paper §3.1-§3.2):
//  * the full 166-vector functional suite against the golden model, on
//    both the labeled and the baseline processor (parameterized);
//  * type-checking results: labeled passes with exactly 3 downgrades,
//    the vulnerable variant is rejected at the stall-gated pc update,
//    classic SecVerilog cannot accept the mode-switching design;
//  * the quad-core ring design compiles, type-checks, and moves data.
#include "check/typecheck.hpp"
#include "proc/assembler.hpp"
#include "proc/sources.hpp"
#include "proc/testbench.hpp"
#include "proc/testvectors.hpp"
#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace svlc::proc {
namespace {

std::string sanitize(const std::string& name) {
    std::string out;
    for (char c : name)
        out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    return out;
}

// ---------------------------------------------------------------------------
// Functional suite: all 166 vectors on the labeled processor.
// ---------------------------------------------------------------------------

class LabeledVectors : public ::testing::TestWithParam<size_t> {};

TEST_P(LabeledVectors, MatchesGoldenModel) {
    static const std::vector<TestVector> vectors = functional_test_vectors();
    const TestVector& vec = vectors[GetParam()];
    std::string result = run_vector(*labeled_cpu_design(), vec);
    EXPECT_EQ(result, "");
}

INSTANTIATE_TEST_SUITE_P(
    All, LabeledVectors,
    ::testing::Range<size_t>(0, functional_test_vectors().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
        static const std::vector<TestVector> vectors =
            functional_test_vectors();
        return sanitize(vectors[info.param].name);
    });

// The baseline (label-stripped) processor must behave identically; spot
// check a representative slice rather than duplicating all 166.
class BaselineVectors : public ::testing::TestWithParam<size_t> {};

TEST_P(BaselineVectors, MatchesGoldenModel) {
    static const std::vector<TestVector> vectors = functional_test_vectors();
    const TestVector& vec = vectors[GetParam() * 7 % vectors.size()];
    std::string result = run_vector(*baseline_cpu_design(), vec);
    EXPECT_EQ(result, "");
}

INSTANTIATE_TEST_SUITE_P(Sampled, BaselineVectors,
                         ::testing::Range<size_t>(0, 24));

// Fetch wait-states (instruction-cache-miss modelling) must slow the
// pipeline without changing any architectural result — the invariance the
// paper's pc-update fix ("stalls during a label change are spurious")
// depends on.
class StalledVectors : public ::testing::TestWithParam<size_t> {};

TEST_P(StalledVectors, RandomWaitStatesPreserveArchitecture) {
    static const std::vector<TestVector> vectors = functional_test_vectors();
    TestVector vec = vectors[GetParam() * 11 % vectors.size()];
    vec.fstall_seed = 0xF57A11 + GetParam();
    std::string result = run_vector(*labeled_cpu_design(), vec);
    EXPECT_EQ(result, "");
}

INSTANTIATE_TEST_SUITE_P(Sampled, StalledVectors,
                         ::testing::Range<size_t>(0, 20));

// ---------------------------------------------------------------------------
// Type checking (paper §3.2)
// ---------------------------------------------------------------------------

TEST(ProcessorCheck, LabeledDesignPassesWithThreeDowngrades) {
    DiagnosticEngine diags;
    auto result = check::check_design(*labeled_cpu_design(), diags);
    EXPECT_TRUE(result.ok) << diags.render();
    EXPECT_EQ(result.downgrade_count, 3u)
        << "the paper uses explicit downgrading in exactly three places";
    EXPECT_GT(result.obligations.size(), 400u);
}

TEST(ProcessorCheck, VulnerableVariantRejectedAtPcUpdate) {
    auto design = compile_cpu(vulnerable_cpu_source());
    DiagnosticEngine diags;
    auto result = check::check_design(*design, diags);
    EXPECT_FALSE(result.ok);
    // Both failing obligations target the pc register.
    size_t pc_failures = 0;
    for (const auto& ob : result.obligations)
        if (!ob.result.proven() &&
            design->net(ob.target).name == "pc")
            ++pc_failures;
    EXPECT_GE(pc_failures, 1u) << diags.render();
}

TEST(ProcessorCheck, ClassicSecVerilogRejectsTheModeSwitchDesign) {
    // "No previously proposed security type system for HDLs can support
    // mode changes both securely and correctly" (§3.1): the same secure
    // design fails under current-cycle label checking.
    DiagnosticEngine diags;
    check::CheckOptions opts;
    opts.mode = check::CheckerMode::ClassicSecVerilog;
    auto result = check::check_design(*labeled_cpu_design(), diags, opts);
    EXPECT_FALSE(result.ok);
}

TEST(ProcessorCheck, HoldObligationsCoverSysretButNotSyscall) {
    // Precision claim of §3.2: label downgrades (SYSRET, T->U) need no
    // code; the hold obligations for mode-dependent registers are proven
    // because the only upgrade (SYSCALL) fully rewrites them.
    DiagnosticEngine diags;
    auto result = check::check_design(*labeled_cpu_design(), diags);
    size_t hold_count = 0;
    for (const auto& ob : result.obligations)
        if (ob.kind == check::ObligationKind::Hold) {
            ++hold_count;
            EXPECT_TRUE(ob.result.proven())
                << "hold obligation failed for net id " << ob.target;
        }
    EXPECT_GT(hold_count, 10u); // pc + pipeline registers + gpr
}

// ---------------------------------------------------------------------------
// Quad-core ring (§3.1 platform)
// ---------------------------------------------------------------------------

TEST(QuadCore, CompilesAndTypeChecks) {
    auto design = compile_cpu(quad_core_source(), "quad");
    DiagnosticEngine diags;
    auto result = check::check_design(*design, diags);
    EXPECT_TRUE(result.ok) << diags.render();
    EXPECT_EQ(result.downgrade_count, 12u); // 3 per core
}

TEST(QuadCore, RingMovesDataBetweenCores) {
    auto design = compile_cpu(quad_core_source(), "quad");
    // Every core runs the same program: user code sends a core-unique
    // value (derived from what it received + 1) around the ring.
    auto kernel = assemble("sysret\nboot: j boot\n");
    auto user = assemble(R"(
        addiu $1, $0, 0x3FC
        addiu $2, $0, 0x111
        sw $2, 0($1)          # send 0x111
        addiu $3, $0, 0x3F8
wait:   lw $4, 0($3)          # receive from the ring
        beq $4, $0, wait
        addiu $4, $4, 1
        sw $4, 0($1)          # forward incremented value
spin:   j spin
)");
    ASSERT_TRUE(kernel.ok && user.ok);
    sim::Simulator sim(*design);
    for (const char* core : {"c0.", "c1.", "c2.", "c3."}) {
        for (uint32_t i = 0; i < ArchParams::kImemWords; ++i) {
            sim.poke_elem(std::string(core) + "imem_k", i,
                          i < kernel.words.size() ? kernel.words[i] : kNop);
            sim.poke_elem(std::string(core) + "imem_u", i,
                          i < user.words.size() ? user.words[i] : kNop);
        }
    }
    sim.set_input("rst", 1);
    sim.step();
    sim.set_input("rst", 0);
    sim.run(400);
    // Each core received its neighbour's value and forwarded value+1;
    // after the ring settles every net_out is 0x112 (0x111 + 1).
    for (const char* core : {"c0.", "c1.", "c2.", "c3."})
        EXPECT_EQ(sim.get(std::string(core) + "net_out").value(), 0x112u)
            << core;
}

// ---------------------------------------------------------------------------
// Baseline derivation
// ---------------------------------------------------------------------------

TEST(StripSecurity, RemovesAllSecuritySyntax) {
    std::string baseline = baseline_cpu_source();
    EXPECT_EQ(baseline.find("{T}"), std::string::npos);
    EXPECT_EQ(baseline.find("{U}"), std::string::npos);
    EXPECT_EQ(baseline.find("{lb(mode)}"), std::string::npos);
    EXPECT_EQ(baseline.find("endorse("), std::string::npos);
    // But the functional structure is intact.
    EXPECT_NE(baseline.find("wb_take_syscall"), std::string::npos);
    EXPECT_NE(baseline.find("module cpu"), std::string::npos);
}

TEST(StripSecurity, UnwrapsDowngradesPreservingExpression) {
    std::string out =
        strip_security("x <= endorse(gpr[4], T);\ny <= declassify(a + b, U);\n");
    EXPECT_EQ(out, "x <= (gpr[4]);\ny <= (a + b);\n");
}

} // namespace
} // namespace svlc::proc
