// Solver unit tests: three-valued evaluation soundness (property-based),
// label evaluation, syntactic coverage, congruence, enumeration behaviour
// and budgets, and counterexample reporting.
#include "sem/updates.hpp"
#include "sim/simulator.hpp"
#include "solver/entail.hpp"
#include "solver/eval3.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>

namespace svlc::test {
namespace {

using hir::BinaryOp;
using hir::Expr;
using hir::ExprPtr;
using hir::UnaryOp;
using solver::Assignment;
using solver::EntailmentEngine;
using solver::EntailStatus;
using solver::SolverLabel;

// ---------------------------------------------------------------------------
// eval3 — unit + property
// ---------------------------------------------------------------------------

TEST(Eval3, ConstantsAndUnknowns) {
    Assignment asg;
    auto c = Expr::make_const(BitVec(8, 42));
    EXPECT_EQ(eval3(*c, asg)->value(), 42u);
    auto n = Expr::make_net(3, 8, false);
    EXPECT_FALSE(eval3(*n, asg).has_value());
    asg.set(3, false, BitVec(8, 7));
    EXPECT_EQ(eval3(*n, asg)->value(), 7u);
    // Primed and plain values are distinct.
    auto np = Expr::make_net(3, 8, true);
    EXPECT_FALSE(eval3(*np, asg).has_value());
}

TEST(Eval3, ShortCircuitsStaySoundUnderUnknowns) {
    Assignment asg;
    auto unknown = [] { return Expr::make_net(9, 1, false); };
    auto f = Expr::make_const(BitVec(1, 0));
    auto t = Expr::make_const(BitVec(1, 1));
    // unknown && false == false
    auto e1 = Expr::make_binary(BinaryOp::LogAnd, unknown(), f->clone());
    EXPECT_EQ(eval3(*e1, asg)->value(), 0u);
    // unknown || true == true
    auto e2 = Expr::make_binary(BinaryOp::LogOr, unknown(), t->clone());
    EXPECT_EQ(eval3(*e2, asg)->value(), 1u);
    // unknown & 0 == 0 (bitwise)
    auto e3 = Expr::make_binary(BinaryOp::And, Expr::make_net(9, 8, false),
                                Expr::make_const(BitVec(8, 0)));
    EXPECT_EQ(eval3(*e3, asg)->value(), 0u);
    // unknown + 0 is unknown
    auto e4 = Expr::make_binary(BinaryOp::Add, Expr::make_net(9, 8, false),
                                Expr::make_const(BitVec(8, 0)));
    EXPECT_FALSE(eval3(*e4, asg).has_value());
}

TEST(Eval3, CondWithEqualBranchesIgnoresSelector) {
    Assignment asg;
    auto e = Expr::make_cond(Expr::make_net(5, 1, false),
                             Expr::make_const(BitVec(8, 9)),
                             Expr::make_const(BitVec(8, 9)));
    EXPECT_EQ(eval3(*e, asg)->value(), 9u);
}

/// Property: whenever eval3 returns a value under a *partial* assignment,
/// the concrete evaluation under every random total extension agrees.
class Eval3Soundness : public ::testing::TestWithParam<uint64_t> {};

ExprPtr random_expr(std::mt19937_64& rng, int depth) {
    if (depth == 0 || rng() % 4 == 0) {
        if (rng() % 2)
            return Expr::make_const(BitVec(8, rng()));
        return Expr::make_net(static_cast<hir::NetId>(rng() % 4), 8,
                              rng() % 2 == 0);
    }
    switch (rng() % 8) {
    case 0:
        return Expr::make_unary(UnaryOp::BitNot, random_expr(rng, depth - 1));
    case 1:
        return Expr::make_unary(UnaryOp::LogNot, random_expr(rng, depth - 1));
    case 2:
        return Expr::make_binary(BinaryOp::Add, random_expr(rng, depth - 1),
                                 random_expr(rng, depth - 1));
    case 3:
        return Expr::make_binary(BinaryOp::And, random_expr(rng, depth - 1),
                                 random_expr(rng, depth - 1));
    case 4:
        return Expr::make_binary(BinaryOp::LogOr, random_expr(rng, depth - 1),
                                 random_expr(rng, depth - 1));
    case 5:
        return Expr::make_binary(BinaryOp::Eq, random_expr(rng, depth - 1),
                                 random_expr(rng, depth - 1));
    case 6:
        return Expr::make_cond(random_expr(rng, depth - 1),
                               random_expr(rng, depth - 1),
                               random_expr(rng, depth - 1));
    default:
        return Expr::make_binary(BinaryOp::Mul, random_expr(rng, depth - 1),
                                 random_expr(rng, depth - 1));
    }
}

TEST_P(Eval3Soundness, PartialResultAgreesWithEveryExtension) {
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        ExprPtr e = random_expr(rng, 4);
        // Partial assignment: each of the 4 nets known with prob 1/2
        // (independently for plain and primed).
        Assignment partial;
        for (hir::NetId n = 0; n < 4; ++n) {
            if (rng() % 2)
                partial.set(n, false, BitVec(8, rng()));
            if (rng() % 2)
                partial.set(n, true, BitVec(8, rng()));
        }
        auto partial_result = eval3(*e, partial);
        if (!partial_result)
            continue; // unknown never claims anything
        for (int ext = 0; ext < 8; ++ext) {
            Assignment total = partial;
            for (hir::NetId n = 0; n < 4; ++n) {
                if (!total.get(n, false))
                    total.set(n, false, BitVec(8, rng()));
                if (!total.get(n, true))
                    total.set(n, true, BitVec(8, rng()));
            }
            auto total_result = eval3(*e, total);
            ASSERT_TRUE(total_result.has_value());
            EXPECT_EQ(total_result->value(), partial_result->value())
                << "seed " << GetParam() << " trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eval3Soundness,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Entailment engine
// ---------------------------------------------------------------------------

struct EngineFixture {
    Compiled compiled;
    sem::Equations eqs;

    explicit EngineFixture(const std::string& src) {
        compiled = compile(src);
        EXPECT_TRUE(compiled.ok()) << compiled.errors();
        eqs = sem::build_equations(*compiled.design);
    }
    hir::Design& design() { return *compiled.design; }
    LevelId level(const char* name) {
        return *design().policy.lattice().find(name);
    }
};

const char* kTwoRegs = R"(
lattice { level T; level U; flow T -> U; }
function lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} go, input com [7:0] {U} din);
  reg seq {T} mode;
  reg seq [7:0] {lb(mode)} r;
  wire com {T} flip;
  assign flip = go;
  always @(seq) begin
    if (flip) mode <= ~mode;
  end
endmodule
)";

TEST(Entailment, SyntacticBottomAndIdentity) {
    EngineFixture fx(kTwoRegs);
    EntailmentEngine engine(fx.design(), fx.eqs);
    auto bot = SolverLabel::bottom();
    auto t = SolverLabel::level(fx.level("T"));
    auto u = SolverLabel::level(fx.level("U"));
    EXPECT_TRUE(engine.check_flow(bot, u, {}).proven());
    EXPECT_TRUE(engine.check_flow(t, t, {}).proven());
    EXPECT_TRUE(engine.check_flow(t, u, {}).syntactic);
    auto res = engine.check_flow(u, t, {});
    EXPECT_EQ(res.status, EntailStatus::Refuted);
}

TEST(Entailment, FunctionRangeBound) {
    EngineFixture fx(kTwoRegs);
    EntailmentEngine engine(fx.design(), fx.eqs);
    FuncId lb = *fx.design().policy.find_function("lb");
    hir::NetId mode = fx.design().find_net("mode");
    SolverLabel dep;
    solver::SolverAtom atom;
    atom.kind = solver::SolverAtom::Kind::Func;
    atom.func = lb;
    atom.args.push_back({mode, false});
    dep.atoms.push_back(atom);
    // lb's whole range flows to U: syntactic.
    auto res = engine.check_flow(dep, SolverLabel::level(fx.level("U")), {});
    EXPECT_TRUE(res.proven());
    EXPECT_TRUE(res.syntactic);
    // But not to T.
    EXPECT_FALSE(
        engine.check_flow(dep, SolverLabel::level(fx.level("T")), {})
            .proven());
}

TEST(Entailment, FactsPruneCandidates) {
    EngineFixture fx(kTwoRegs);
    EntailmentEngine engine(fx.design(), fx.eqs);
    FuncId lb = *fx.design().policy.find_function("lb");
    hir::NetId mode = fx.design().find_net("mode");
    SolverLabel dep;
    solver::SolverAtom atom;
    atom.kind = solver::SolverAtom::Kind::Func;
    atom.func = lb;
    atom.args.push_back({mode, false});
    dep.atoms.push_back(atom);
    // Under the fact mode == 0, lb(mode) ⊑ T.
    auto fact = Expr::make_binary(BinaryOp::Eq,
                                  Expr::make_net(mode, 1, false),
                                  Expr::make_const(BitVec(1, 0)));
    std::vector<const Expr*> facts{fact.get()};
    EXPECT_TRUE(
        engine.check_flow(dep, SolverLabel::level(fx.level("T")), facts)
            .proven());
}

TEST(Entailment, PrimedTargetUsesEquations) {
    EngineFixture fx(kTwoRegs);
    EntailmentEngine engine(fx.design(), fx.eqs);
    FuncId lb = *fx.design().policy.find_function("lb");
    hir::NetId mode = fx.design().find_net("mode");
    SolverLabel next_dep;
    solver::SolverAtom atom;
    atom.kind = solver::SolverAtom::Kind::Func;
    atom.func = lb;
    atom.args.push_back({mode, true}); // next-cycle label
    next_dep.atoms.push_back(atom);

    // Facts: mode == 1 and flip (so mode' == 0): U data must NOT flow.
    hir::NetId flip = fx.design().find_net("flip");
    auto f1 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(mode, 1, false),
                                Expr::make_const(BitVec(1, 1)));
    auto f2 = Expr::make_net(flip, 1, false);
    std::vector<const Expr*> facts{f1.get(), f2.get()};
    auto res = engine.check_flow(SolverLabel::level(fx.level("U")), next_dep,
                                 facts);
    EXPECT_EQ(res.status, EntailStatus::Refuted);
    EXPECT_NE(res.detail.find("U ⋢ T"), std::string::npos) << res.detail;

    // With ¬flip instead, mode' == mode == 1: U flows into lb(1) = U.
    auto f3 = Expr::make_unary(UnaryOp::LogNot, Expr::make_net(flip, 1, false));
    std::vector<const Expr*> facts2{f1.get(), f3.get()};
    EXPECT_TRUE(engine.check_flow(SolverLabel::level(fx.level("U")), next_dep,
                                  facts2)
                    .proven());
}

TEST(Entailment, EquationAblationLosesThePrimedProof) {
    EngineFixture fx(kTwoRegs);
    solver::EntailOptions opts;
    opts.use_equations = false;
    EntailmentEngine engine(fx.design(), fx.eqs, opts);
    FuncId lb = *fx.design().policy.find_function("lb");
    hir::NetId mode = fx.design().find_net("mode");
    hir::NetId flip = fx.design().find_net("flip");
    SolverLabel next_dep;
    solver::SolverAtom atom;
    atom.kind = solver::SolverAtom::Kind::Func;
    atom.func = lb;
    atom.args.push_back({mode, true});
    next_dep.atoms.push_back(atom);
    auto f1 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(mode, 1, false),
                                Expr::make_const(BitVec(1, 1)));
    auto f3 = Expr::make_unary(UnaryOp::LogNot, Expr::make_net(flip, 1, false));
    std::vector<const Expr*> facts{f1.get(), f3.get()};
    // Without equations mode' is unconstrained: cannot prove U ⊑ lb(mode').
    EXPECT_FALSE(engine.check_flow(SolverLabel::level(fx.level("U")),
                                   next_dep, facts)
                     .proven());
}

TEST(Entailment, WideNetsStayUnknownButSoundnessHolds) {
    EngineFixture fx(R"(
lattice { level T; level U; flow T -> U; }
module m(input com [31:0] {T} wide);
  wire com {T} w;
  assign w = wide == 32'h0;
endmodule
)");
    solver::EntailOptions opts;
    opts.max_enum_width = 8; // the 32-bit net is not enumerable
    EntailmentEngine engine(fx.design(), fx.eqs, opts);
    LevelId t = fx.level("T"), u = fx.level("U");
    // A fact over the wide net cannot prune, but T ⊑ U holds anyway.
    hir::NetId wide = fx.design().find_net("wide");
    auto fact = Expr::make_binary(BinaryOp::Eq,
                                  Expr::make_net(wide, 32, false),
                                  Expr::make_const(BitVec(32, 5)));
    std::vector<const Expr*> facts{fact.get()};
    EXPECT_TRUE(engine.check_flow(SolverLabel::level(t),
                                  SolverLabel::level(u), facts)
                    .proven());
    // And U ⊑ T is refuted even though the fact is undecidable.
    auto res = engine.check_flow(SolverLabel::level(u), SolverLabel::level(t),
                                 facts);
    EXPECT_NE(res.status, EntailStatus::Proven);
}

TEST(Entailment, StatsAccumulate) {
    EngineFixture fx(kTwoRegs);
    EntailmentEngine engine(fx.design(), fx.eqs);
    auto t = SolverLabel::level(fx.level("T"));
    auto u = SolverLabel::level(fx.level("U"));
    engine.check_flow(t, u, {});
    engine.check_flow(u, t, {});
    EXPECT_EQ(engine.stats().queries, 2u);
    EXPECT_EQ(engine.stats().syntactic_hits, 1u);
    EXPECT_EQ(engine.stats().enumerations, 1u);
}

TEST(ExprEqual, StructuralEquality) {
    auto a = Expr::make_binary(BinaryOp::Add, Expr::make_net(1, 8, false),
                               Expr::make_const(BitVec(8, 3)));
    auto b = Expr::make_binary(BinaryOp::Add, Expr::make_net(1, 8, false),
                               Expr::make_const(BitVec(8, 3)));
    auto c = Expr::make_binary(BinaryOp::Add, Expr::make_net(1, 8, true),
                               Expr::make_const(BitVec(8, 3)));
    EXPECT_TRUE(solver::expr_equal(*a, *b));
    EXPECT_FALSE(solver::expr_equal(*a, *c)); // primed differs
}

// ---------------------------------------------------------------------------
// Defining equations (sem/updates)
// ---------------------------------------------------------------------------

TEST(Equations, RegisterHoldIsTheDefault) {
    auto c = compile(R"(
module m(input com {T} en, input com [7:0] {T} d);
  reg seq [7:0] {T} r;
  always @(seq) begin
    if (en) r <= d;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto eqs = sem::build_equations(*c.design);
    const Expr* def = eqs.def(c.design->find_net("r"));
    ASSERT_NE(def, nullptr);
    // r' = en ? d : r
    ASSERT_EQ(def->kind, hir::ExprKind::Cond);
    EXPECT_EQ(def->c->kind, hir::ExprKind::NetRef);
    EXPECT_EQ(def->c->net, c.design->find_net("r"));
    EXPECT_FALSE(def->c->primed);
}

TEST(Equations, LastWriteWinsInEquations) {
    auto c = compile(R"(
module m(input com {T} a, input com {T} b);
  reg seq [7:0] {T} r;
  always @(seq) begin
    r <= 8'h11;
    if (b) r <= 8'h22;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto eqs = sem::build_equations(*c.design);
    const Expr* def = eqs.def(c.design->find_net("r"));
    ASSERT_NE(def, nullptr);
    // Equation must evaluate like the simulator: b ? 0x22 : 0x11.
    Assignment asg;
    asg.set(c.design->find_net("b"), false, BitVec(1, 1));
    EXPECT_EQ(eval3(*def, asg)->value(), 0x22u);
    asg.set(c.design->find_net("b"), false, BitVec(1, 0));
    EXPECT_EQ(eval3(*def, asg)->value(), 0x11u);
}

TEST(Equations, BlockingSubstitutionInCombProcesses) {
    auto c = compile(R"(
module m(input com [7:0] {T} a);
  wire com [7:0] {T} x;
  wire com [7:0] {T} y;
  always @(*) begin
    x = a + 8'h1;
    y = x + 8'h1;   // reads the freshly-written x
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto eqs = sem::build_equations(*c.design);
    const Expr* ydef = eqs.def(c.design->find_net("y"));
    ASSERT_NE(ydef, nullptr);
    Assignment asg;
    asg.set(c.design->find_net("a"), false, BitVec(8, 5));
    // y = (a+1)+1 = 7: x must have been inlined, not left symbolic.
    EXPECT_EQ(eval3(*ydef, asg)->value(), 7u);
}

TEST(Equations, ArraysAndInputsHaveNoEquations) {
    auto c = compile(R"(
module m(input com [7:0] {T} a, input com [1:0] {T} i);
  reg seq [7:0] {T} mem[0:3];
  always @(seq) begin
    mem[i] <= a;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto eqs = sem::build_equations(*c.design);
    EXPECT_EQ(eqs.def(c.design->find_net("mem")), nullptr);
    EXPECT_EQ(eqs.def(c.design->find_net("a")), nullptr);
}

/// Property: for every scalar register of a random-ish design, stepping
/// the simulator agrees with evaluating the extracted equation on the
/// pre-step state.
TEST(Equations, AgreeWithSimulatorOnModeSwitchDesign) {
    auto c = compile(policy_header() + R"(
module m(input com {T} go, input com [7:0] {U} d);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (go && (mode == 1'b1) && (next(mode) == 1'b0)) r <= 8'h0;
    else if (mode == 1'b1) r <= d;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto eqs = sem::build_equations(*c.design);
    sim::Simulator sim(*c.design);
    std::mt19937_64 rng(99);
    std::vector<hir::NetId> regs{c.design->find_net("mode"),
                                 c.design->find_net("r")};
    for (int cycle = 0; cycle < 200; ++cycle) {
        uint64_t go = rng() & 1, d = rng() & 0xFF;
        sim.set_input("go", go);
        sim.set_input("d", d);
        // Snapshot pre-step state into an assignment.
        Assignment asg;
        for (const auto& net : c.design->nets)
            if (net.array_size == 0)
                asg.set(net.id, false, sim.get(net.id));
        // The equations reference primed values of *other* registers;
        // provide them by evaluating in dependency order (mode first).
        for (hir::NetId r : regs) {
            const Expr* def = eqs.def(r);
            ASSERT_NE(def, nullptr);
            auto v = eval3(*def, asg);
            ASSERT_TRUE(v.has_value());
            asg.set(r, true, *v);
        }
        sim.step();
        for (hir::NetId r : regs)
            EXPECT_EQ(sim.get(r).value(), asg.get(r, true)->value())
                << "cycle " << cycle;
    }
}

} // namespace
} // namespace svlc::test
