// CDCL backend tests: the compiled-term/eval3 equivalence contract, the
// adversarial corners of the conflict-driven search (empty enumeration
// set, deadline expiry mid-search, closure truncation), search-telemetry
// counters (zero for enum/prune), learned-clause reuse across repeated
// and label-changed queries, and the ablation-mode identity (arena /
// packed evaluation change machinery, never verdicts).
#include "sem/updates.hpp"
#include "solver/arena.hpp"
#include "solver/backend.hpp"
#include "solver/backend_cdcl.hpp"
#include "solver/entail.hpp"
#include "solver/term.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <random>

namespace svlc::test {
namespace {

using hir::BinaryOp;
using hir::Expr;
using hir::ExprPtr;
using hir::UnaryOp;
using solver::Assignment;
using solver::BackendKind;
using solver::EntailmentEngine;
using solver::EntailOptions;
using solver::EntailResult;
using solver::EntailStatus;
using solver::EnumProblem;
using solver::SolverLabel;

// ---------------------------------------------------------------------------
// Compiled terms vs eval3
// ---------------------------------------------------------------------------

/// Random expressions over 3 nets (plain and primed, 8-bit), covering
/// every operator class the compiler lowers.
ExprPtr random_term(std::mt19937_64& rng, int depth) {
    if (depth == 0 || rng() % 4 == 0) {
        if (rng() % 2)
            return Expr::make_const(BitVec(8, rng()));
        return Expr::make_net(static_cast<hir::NetId>(rng() % 3), 8,
                              rng() % 2 == 0);
    }
    auto sub = [&] { return random_term(rng, depth - 1); };
    switch (rng() % 12) {
    case 0: return Expr::make_unary(UnaryOp::BitNot, sub());
    case 1: return Expr::make_unary(UnaryOp::LogNot, sub());
    case 2: return Expr::make_unary(UnaryOp::Neg, sub());
    case 3: return Expr::make_binary(BinaryOp::Add, sub(), sub());
    case 4: return Expr::make_binary(BinaryOp::Sub, sub(), sub());
    case 5: return Expr::make_binary(BinaryOp::Mul, sub(), sub());
    case 6: return Expr::make_binary(BinaryOp::And, sub(), sub());
    case 7: return Expr::make_binary(BinaryOp::Xor, sub(), sub());
    case 8: return Expr::make_binary(BinaryOp::Eq, sub(), sub());
    case 9: return Expr::make_binary(BinaryOp::LogAnd, sub(), sub());
    case 10: return Expr::make_binary(BinaryOp::LogOr, sub(), sub());
    default: return Expr::make_cond(sub(), sub(), sub());
    }
}

TEST(CompiledTerms, EquivalentToEval3UnderPartialAssignments) {
    // The equivalence contract of term.hpp: for any expression and any
    // partial assignment, eval_term over the packed words returns exactly
    // what eval3 returns over the Assignment holding the *complete*
    // fields — same knownness, same value. A partially-assigned field
    // must read as unknown (knownness is variable-granular), which is
    // what keeps the CDCL backend neither more nor less precise than the
    // enum reference.
    solver::BitLayout layout;
    uint32_t off = 0;
    for (hir::NetId n = 0; n < 3; ++n)
        for (bool primed : {false, true}) {
            layout.fields.push_back({n, primed, 8, off});
            off += 8;
        }
    layout.nbits = off;

    std::mt19937_64 rng(20260809);
    solver::Arena arena;
    solver::TermScratch scratch;
    for (int trial = 0; trial < 400; ++trial) {
        ExprPtr e = random_term(rng, 4);
        solver::TermProgram prog = solver::compile_term(*e, layout, arena);
        for (int asg_trial = 0; asg_trial < 8; ++asg_trial) {
            Assignment asg;
            uint64_t values = 0, assigned = 0;
            for (size_t i = 0; i < layout.fields.size(); ++i) {
                const auto& f = layout.fields[i];
                uint64_t fmask = layout.field_mask(i);
                switch (rng() % 3) {
                case 0: // fully assigned: known in both evaluators
                {
                    uint64_t v = rng() & 0xFF;
                    asg.set(f.net, f.primed, BitVec(8, v));
                    values |= v << f.offset;
                    assigned |= fmask;
                    break;
                }
                case 1: // partially assigned: unknown in both
                {
                    uint64_t sub = (rng() << f.offset) & fmask;
                    if (sub == fmask)
                        sub &= fmask >> 1; // keep it a proper subset
                    assigned |= sub;
                    values |= rng() & sub;
                    break;
                }
                default: // unassigned
                    break;
                }
            }
            auto ref = eval3(*e, asg);
            auto packed =
                solver::eval_term(prog, layout, values, assigned, scratch);
            auto mapped = solver::eval_term_map(prog, layout, asg, scratch);
            ASSERT_EQ(ref.has_value(), packed.has_value())
                << "trial " << trial << " packed knownness diverged";
            ASSERT_EQ(ref.has_value(), mapped.has_value())
                << "trial " << trial << " map-mode knownness diverged";
            if (ref) {
                EXPECT_EQ(ref->value(), packed->value()) << "trial " << trial;
                EXPECT_EQ(ref->width(), packed->width()) << "trial " << trial;
                EXPECT_EQ(ref->value(), mapped->value()) << "trial " << trial;
            }
        }
        if (trial % 50 == 49)
            arena.reset(); // exercise arena reuse mid-campaign
    }
}

// ---------------------------------------------------------------------------
// Backend-level adversarial problems
// ---------------------------------------------------------------------------

struct ProblemFixture {
    Compiled compiled;
    LevelId t, u;

    ProblemFixture()
        : compiled(compile(R"(
lattice { level T; level U; flow T -> U; }
module m(input com {T} a, input com [4:0] {T} x5, input com [4:0] {T} y5,
         input com [7:0] {T} x8, input com [7:0] {T} y8);
endmodule
)")) {
        EXPECT_TRUE(compiled.ok()) << compiled.errors();
        t = *compiled.design->policy.lattice().find("T");
        u = *compiled.design->policy.lattice().find("U");
    }
    hir::Design& design() { return *compiled.design; }
    hir::NetId net(const char* name) { return compiled.design->find_net(name); }
};

void expect_same_result(const EntailResult& ref, const EntailResult& got,
                        const char* what) {
    EXPECT_EQ(ref.status, got.status) << what;
    EXPECT_EQ(ref.detail, got.detail) << what;
    EXPECT_EQ(ref.timed_out, got.timed_out) << what;
    ASSERT_EQ(ref.witness.has_value(), got.witness.has_value()) << what;
    if (ref.witness) {
        EXPECT_EQ(ref.witness->lhs_level, got.witness->lhs_level) << what;
        EXPECT_EQ(ref.witness->rhs_level, got.witness->rhs_level) << what;
        ASSERT_EQ(ref.witness->bindings.size(), got.witness->bindings.size())
            << what;
        for (size_t i = 0; i < ref.witness->bindings.size(); ++i) {
            EXPECT_EQ(ref.witness->bindings[i].net,
                      got.witness->bindings[i].net) << what;
            EXPECT_EQ(ref.witness->bindings[i].primed,
                      got.witness->bindings[i].primed) << what;
            EXPECT_EQ(ref.witness->bindings[i].value.value(),
                      got.witness->bindings[i].value.value()) << what;
        }
    }
}

TEST(CdclAdversarial, EmptyEnumerationSetMatchesEnum) {
    // domain == 1: a single empty candidate. The CDCL backend must reach
    // the same three verdict shapes as enum — flows (Proven), a definite
    // violation (Refuted, empty witness), and an undecidable fact
    // (Unknown with enum's exact note).
    ProblemFixture fx;
    SolverLabel lt = SolverLabel::level(fx.t), lu = SolverLabel::level(fx.u);
    auto enum_be = solver::make_backend(BackendKind::Enum);
    auto cdcl_be = solver::make_cdcl_backend();

    std::vector<const Expr*> no_facts;
    {
        EnumProblem p{fx.design(), lt, lu, no_facts, {}, 1, {}};
        EntailResult ref = enum_be->enumerate(p);
        EXPECT_EQ(ref.status, EntailStatus::Proven);
        expect_same_result(ref, cdcl_be->enumerate(p), "flows/empty");
    }
    {
        EnumProblem p{fx.design(), lu, lt, no_facts, {}, 1, {}};
        EntailResult ref = enum_be->enumerate(p);
        EXPECT_EQ(ref.status, EntailStatus::Refuted);
        ASSERT_TRUE(ref.witness.has_value());
        EXPECT_TRUE(ref.witness->bindings.empty());
        expect_same_result(ref, cdcl_be->enumerate(p), "refuted/empty");
    }
    {
        // The fact reads a net outside the (empty) enumeration set: it is
        // permanently unknown, so the single candidate is only possibly
        // reachable.
        ExprPtr fact = Expr::make_net(fx.net("a"), 1, false);
        std::vector<const Expr*> facts{fact.get()};
        EnumProblem p{fx.design(), lu, lt, facts, {}, 1, {}};
        EntailResult ref = enum_be->enumerate(p);
        EXPECT_EQ(ref.status, EntailStatus::Unknown);
        EXPECT_NE(ref.detail.find("possibly-reachable violation"),
                  std::string::npos) << ref.detail;
        expect_same_result(ref, cdcl_be->enumerate(p), "unknown/empty");
    }
}

TEST(CdclAdversarial, DeadlineExpiryMidSearchFiresWithin1024) {
    // An expired deadline must surface as enum's exact timeout verdict in
    // every backend, even though the check is amortized to every 1024th
    // candidate (the DeadlineGate hoist). The fact (x8 & y8) == 255 puts
    // the only satisfying candidate at the very top of the 2^16 space and
    // its support spans every bit, which defeats both prune's stride
    // jumps and cdcl's clause-guided sweep jumps — every backend must
    // walk candidate by candidate and hit the gate.
    ProblemFixture fx;
    SolverLabel lt = SolverLabel::level(fx.t), lu = SolverLabel::level(fx.u);
    ExprPtr fact = Expr::make_binary(
        BinaryOp::Eq,
        Expr::make_binary(BinaryOp::And, Expr::make_net(fx.net("x8"), 8, false),
                          Expr::make_net(fx.net("y8"), 8, false)),
        Expr::make_const(BitVec(8, 255)));
    std::vector<const Expr*> facts{fact.get()};
    EnumProblem p{fx.design(), lu, lt, facts, {}, 1, {}};
    p.vars = {{fx.net("x8"), false, 8}, {fx.net("y8"), false, 8}};
    p.domain = uint64_t{1} << 16;

    // Sanity first: without a deadline all three agree on the refutation
    // at the top of the space (x8=255 y8=255).
    EntailResult ref = solver::make_backend(BackendKind::Enum)->enumerate(p);
    EXPECT_EQ(ref.status, EntailStatus::Refuted);
    ASSERT_TRUE(ref.witness.has_value());
    for (BackendKind kind : {BackendKind::Prune, BackendKind::Cdcl})
        expect_same_result(ref, solver::make_backend(kind)->enumerate(p),
                           solver::backend_id(kind));

    p.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
    for (BackendKind kind :
         {BackendKind::Enum, BackendKind::Prune, BackendKind::Cdcl}) {
        auto be = solver::make_backend(kind);
        EntailResult r = be->enumerate(p);
        EXPECT_EQ(r.status, EntailStatus::Unknown) << be->id();
        EXPECT_TRUE(r.timed_out) << be->id();
        EXPECT_EQ(r.detail, "entailment deadline exceeded mid-enumeration")
            << be->id();
        if (kind != BackendKind::Cdcl) {
            EXPECT_LE(r.candidates, 1024u)
                << be->id() << ": gate fired later than one amortization "
                << "window after expiry";
        }
    }
}

TEST(DeadlineGate, ExpiredDeadlineFiresExactlyAtTheWindow) {
    // Regression for the hoisted per-candidate deadline check: with an
    // already-expired deadline the gate must report expiry no later than
    // the 1024th tick, and stay expired forever after.
    solver::backend_detail::DeadlineGate gate(
        std::chrono::steady_clock::now() - std::chrono::seconds(1));
    for (int i = 1; i < 1024; ++i)
        EXPECT_FALSE(gate.tick()) << "tick " << i;
    EXPECT_TRUE(gate.tick());
    EXPECT_TRUE(gate.tick());
}

TEST(DeadlineGate, UnsetDeadlineNeverFires) {
    solver::backend_detail::DeadlineGate gate({});
    for (int i = 0; i < 4096; ++i)
        ASSERT_FALSE(gate.tick());
}

// ---------------------------------------------------------------------------
// Engine-level behaviour
// ---------------------------------------------------------------------------

struct EngineFixture {
    Compiled compiled;
    sem::Equations eqs;

    explicit EngineFixture(const std::string& src) {
        compiled = compile(src);
        EXPECT_TRUE(compiled.ok()) << compiled.errors();
        eqs = sem::build_equations(*compiled.design);
    }
    hir::Design& design() { return *compiled.design; }
    LevelId level(const char* name) {
        return *design().policy.lattice().find(name);
    }
};

const char* kTwoFiveBit = R"(
lattice { level T; level U; flow T -> U; }
module m(input com [4:0] {T} x, input com [4:0] {T} y);
endmodule
)";

TEST(CdclCounters, SearchTelemetryIsObservableAndZeroForEnumPrune) {
    // 2^10 candidates (above the direct-sweep cutoff) with two pinning
    // equality facts: the CDCL backend must propagate the pins, and every
    // backend must agree on the witness x=5 y=7.
    EngineFixture fx(kTwoFiveBit);
    hir::NetId x = fx.design().find_net("x"), y = fx.design().find_net("y");
    auto f1 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(x, 5, false),
                                Expr::make_const(BitVec(5, 5)));
    auto f2 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(y, 5, false),
                                Expr::make_const(BitVec(5, 7)));
    std::vector<const Expr*> facts{f1.get(), f2.get()};
    SolverLabel lu = SolverLabel::level(fx.level("U"));
    SolverLabel lt = SolverLabel::level(fx.level("T"));

    EntailResult reference;
    for (BackendKind kind :
         {BackendKind::Enum, BackendKind::Prune, BackendKind::Cdcl}) {
        EntailOptions opts;
        opts.backend = kind;
        EntailmentEngine engine(fx.design(), fx.eqs, opts);
        EntailResult r = engine.check_flow(lu, lt, facts);
        EXPECT_EQ(r.status, EntailStatus::Refuted);
        if (kind == BackendKind::Enum)
            reference = r;
        else
            expect_same_result(reference, r, solver::backend_id(kind));
        const auto& st = engine.stats();
        if (kind == BackendKind::Cdcl) {
            EXPECT_GT(st.propagations, 0u) << "pins must propagate";
            EXPECT_EQ(st.propagations, r.propagations);
        } else {
            EXPECT_EQ(st.conflicts, 0u) << solver::backend_id(kind);
            EXPECT_EQ(st.propagations, 0u) << solver::backend_id(kind);
            EXPECT_EQ(st.learned_clauses, 0u) << solver::backend_id(kind);
            EXPECT_EQ(st.restarts, 0u) << solver::backend_id(kind);
        }
    }
}

const char* kModeSwitch = R"(
lattice { level T; level U; flow T -> U; }
function lb(x:1) { 0 -> T; default -> U; }
module m(input com {T} go, input com [7:0] {U} din);
  reg seq {T} mode;
  reg seq [7:0] {lb(mode)} r;
  wire com {T} flip;
  assign flip = go;
  always @(seq) begin
    if (flip) mode <= ~mode;
  end
endmodule
)";

/// The next-cycle query of solver_test's PrimedTargetUsesEquations: U data
/// into lb(mode') under facts mode == 1 and ¬flip, provable only through
/// the defining-equation closure.
EntailResult primed_query(EngineFixture& fx, EntailOptions opts) {
    EntailmentEngine engine(fx.design(), fx.eqs, opts);
    FuncId lb = *fx.design().policy.find_function("lb");
    hir::NetId mode = fx.design().find_net("mode");
    hir::NetId flip = fx.design().find_net("flip");
    SolverLabel next_dep;
    solver::SolverAtom atom;
    atom.kind = solver::SolverAtom::Kind::Func;
    atom.func = lb;
    atom.args.push_back({mode, true});
    next_dep.atoms.push_back(atom);
    auto f1 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(mode, 1, false),
                                Expr::make_const(BitVec(1, 1)));
    auto f2 = Expr::make_unary(UnaryOp::LogNot,
                               Expr::make_net(flip, 1, false));
    std::vector<const Expr*> facts{f1.get(), f2.get()};
    return engine.check_flow(SolverLabel::level(*fx.design()
                                                     .policy.lattice()
                                                     .find("U")),
                             next_dep, facts);
}

TEST(CdclAdversarial, ClosureTruncationDegradesIdenticallyToEnum) {
    // Dropping the defining-equation closure surrenders the proof — and
    // must surrender it the same way in every backend: Proven with the
    // closure, the identical non-Proven verdict without it. A backend
    // that "proves" past a truncated closure would be unsound.
    EngineFixture fx(kModeSwitch);
    for (bool ablate : {false, true}) {
        EntailResult by_kind[3];
        int i = 0;
        for (BackendKind kind :
             {BackendKind::Enum, BackendKind::Prune, BackendKind::Cdcl}) {
            EntailOptions opts;
            opts.backend = kind;
            opts.use_equations = !ablate;
            by_kind[i++] = primed_query(fx, opts);
        }
        if (!ablate)
            EXPECT_EQ(by_kind[0].status, EntailStatus::Proven);
        else
            EXPECT_NE(by_kind[0].status, EntailStatus::Proven);
        expect_same_result(by_kind[0], by_kind[1], "prune");
        expect_same_result(by_kind[0], by_kind[2], "cdcl");
    }
}

TEST(CdclClauses, ReuseAcrossRepeatAndLabelChangedQueries) {
    // One engine, many obligations: the per-job ClauseDB must survive a
    // repeated query (same facts, same labels), survive a label-only
    // change (label-dependent clauses dropped, fact clauses kept), and
    // still answer every query exactly as a fresh enum engine does.
    EngineFixture fx(kTwoFiveBit);
    hir::NetId x = fx.design().find_net("x"), y = fx.design().find_net("y");
    auto f1 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(x, 5, false),
                                Expr::make_const(BitVec(5, 5)));
    auto f2 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(y, 5, false),
                                Expr::make_const(BitVec(5, 7)));
    std::vector<const Expr*> facts{f1.get(), f2.get()};
    SolverLabel lu = SolverLabel::level(fx.level("U"));
    SolverLabel lt = SolverLabel::level(fx.level("T"));

    EntailOptions copts;
    copts.backend = BackendKind::Cdcl;
    EntailmentEngine cdcl(fx.design(), fx.eqs, copts);

    // (lhs, rhs) sequence: refuted, repeated, label-flipped, repeated.
    std::vector<std::pair<SolverLabel, SolverLabel>> queries{
        {lu, lt}, {lu, lt}, {lt, lu}, {lu, lt}};
    for (size_t qi = 0; qi < queries.size(); ++qi) {
        EntailmentEngine fresh_enum(fx.design(), fx.eqs, EntailOptions{});
        EntailResult ref = fresh_enum.check_flow(queries[qi].first,
                                                 queries[qi].second, facts);
        EntailResult got =
            cdcl.check_flow(queries[qi].first, queries[qi].second, facts);
        expect_same_result(ref, got,
                           ("query " + std::to_string(qi)).c_str());
    }
}

TEST(CdclAblation, EvaluationModesNeverChangeResultsOrDecisions) {
    // cdcl_arena_terms / cdcl_packed_eval swap the fact-evaluation
    // machinery only. All four combinations must produce identical
    // verdicts, witnesses, notes, *and* search counters — identical
    // counters mean the decision/propagation sequences themselves agree,
    // not just the outcomes.
    EngineFixture fx(kTwoFiveBit);
    hir::NetId x = fx.design().find_net("x"), y = fx.design().find_net("y");
    auto f1 = Expr::make_binary(BinaryOp::Eq, Expr::make_net(x, 5, false),
                                Expr::make_const(BitVec(5, 5)));
    auto f2 = Expr::make_binary(
        BinaryOp::Lt, Expr::make_net(y, 5, false),
        Expr::make_binary(BinaryOp::Add, Expr::make_net(x, 5, false),
                          Expr::make_const(BitVec(5, 3))));
    std::vector<const Expr*> facts{f1.get(), f2.get()};
    SolverLabel lu = SolverLabel::level(fx.level("U"));
    SolverLabel lt = SolverLabel::level(fx.level("T"));

    EntailResult reference;
    uint64_t ref_counters[4] = {};
    bool have_reference = false;
    for (bool arena : {true, false})
        for (bool packed : {true, false}) {
            EntailOptions opts;
            opts.backend = BackendKind::Cdcl;
            opts.cdcl_arena_terms = arena;
            opts.cdcl_packed_eval = packed;
            EntailmentEngine engine(fx.design(), fx.eqs, opts);
            EntailResult r = engine.check_flow(lu, lt, facts);
            const char* what = arena ? (packed ? "full" : "arena-only")
                                     : (packed ? "packed-only" : "neither");
            if (!have_reference) {
                reference = r;
                ref_counters[0] = r.conflicts;
                ref_counters[1] = r.propagations;
                ref_counters[2] = r.learned_clauses;
                ref_counters[3] = r.restarts;
                have_reference = true;
                EXPECT_EQ(r.status, EntailStatus::Refuted) << what;
                continue;
            }
            expect_same_result(reference, r, what);
            EXPECT_EQ(r.conflicts, ref_counters[0]) << what;
            EXPECT_EQ(r.propagations, ref_counters[1]) << what;
            EXPECT_EQ(r.learned_clauses, ref_counters[2]) << what;
            EXPECT_EQ(r.restarts, ref_counters[3]) << what;
        }
}

} // namespace
} // namespace svlc::test
