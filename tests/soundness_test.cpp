// Soundness stress: generate random mode-switching designs; every design
// the checker ACCEPTS must satisfy observational determinism under the
// randomized dual-run tester. This is the end-to-end property the type
// system claims (paper §4) — any counterexample here would be a genuine
// soundness bug in the checker/solver/semantics stack.
//
// The generator also tracks the accept rate so the sweep provably
// exercises both verdicts (a generator whose designs all fail would test
// nothing).
#include "test_util.hpp"
#include "verify/noninterference.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace svlc::test {
namespace {

/// A random design over the two-point integrity policy: one mode bit and
/// a handful of mode-dependent or statically-labeled registers with
/// random guarded writes drawn from security-relevant building blocks.
std::string random_design(std::mt19937_64& rng) {
    std::ostringstream os;
    os << policy_header();
    os << "module m(input com {T} go, input com [7:0] {U} udata,\n"
          "         input com [7:0] {T} tdata);\n";
    os << "  reg seq {T} mode;\n";
    os << "  always @(seq) begin\n    if (go) mode <= ~mode;\n  end\n";

    int regs = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < regs; ++i) {
        // Label: dependent, static T, or static U.
        int label_kind = static_cast<int>(rng() % 3);
        const char* label = label_kind == 0   ? "mode_to_lb(mode)"
                            : label_kind == 1 ? "T"
                                              : "U";
        os << "  reg seq [7:0] {" << label << "} r" << i << ";\n";
        os << "  always @(seq) begin\n";
        int writes = 1 + static_cast<int>(rng() % 3);
        for (int w = 0; w < writes; ++w) {
            // Random guard conjunction.
            std::string guard;
            auto add = [&](const std::string& g) {
                guard = guard.empty() ? g : guard + " && " + g;
            };
            if (rng() % 2)
                add("go");
            switch (rng() % 5) {
            case 0: add("(mode == 1'b0)"); break;
            case 1: add("(mode == 1'b1)"); break;
            case 2: add("(next(mode) == 1'b0)"); break;
            case 3: add("(next(mode) == 1'b1)"); break;
            default: break;
            }
            if (guard.empty())
                guard = "go";
            // Random value source.
            const char* rhs;
            switch (rng() % 4) {
            case 0: rhs = "8'h00"; break;
            case 1: rhs = "udata"; break;
            case 2: rhs = "tdata"; break;
            default: rhs = nullptr; break; // self-increment
            }
            os << "    " << (w == 0 ? "if" : "else if") << " (" << guard
               << ") r" << i << " <= ";
            if (rhs)
                os << rhs << ";\n";
            else
                os << "r" << i << " + 8'h1;\n";
        }
        os << "  end\n";
    }
    os << "endmodule\n";
    return os.str();
}

class SoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessSweep, AcceptedDesignsAreObservationallyDeterministic) {
    std::mt19937_64 rng(GetParam() * 7919 + 17);
    int accepted = 0, rejected = 0;
    for (int trial = 0; trial < 25; ++trial) {
        std::string src = random_design(rng);
        auto c = compile(src);
        ASSERT_TRUE(c.ok()) << c.errors() << "\n" << src;
        DiagnosticEngine diags;
        auto verdict = check::check_design(*c.design, diags);
        if (!verdict.ok) {
            ++rejected;
            continue;
        }
        ++accepted;
        verify::NIConfig cfg;
        cfg.observer = *c.design->policy.lattice().find("T");
        cfg.cycles = 64;
        cfg.trials = 3;
        cfg.seed = GetParam() * 131 + static_cast<uint64_t>(trial);
        auto ni = verify::test_noninterference(*c.design, cfg);
        EXPECT_TRUE(ni.ok)
            << "SOUNDNESS VIOLATION: the checker accepted a leaky design\n"
            << src << "\nleak: "
            << (ni.violations.empty() ? "?" : ni.violations[0].description);
    }
    // The sweep must exercise both verdicts to be meaningful.
    EXPECT_GT(accepted, 0) << "generator produced no accepted designs";
    EXPECT_GT(rejected, 0) << "generator produced no rejected designs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Completeness spot-check (the flip side): the canonical secure idioms
/// must remain accepted — a regression here means lost precision.
TEST(PrecisionRegression, CanonicalSecureIdiomsStayAccepted) {
    const char* idioms[] = {
        // 1. clear on upgrade, user data while user.
        R"(
module m(input com {T} go, input com [7:0] {U} u);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin if (go) mode <= ~mode; end
  always @(seq) begin
    if (go && (mode == 1'b1) && (next(mode) == 1'b0)) r <= 8'h0;
    else if (mode == 1'b1) r <= u;
  end
endmodule
)",
        // 2. trusted constant into the upgraded register.
        R"(
module m(input com {T} go, input com [7:0] {T} t);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin if (go) mode <= ~mode; end
  always @(seq) begin
    if (next(mode) == 1'b0) r <= t;
    else r <= 8'hFF;
  end
endmodule
)",
        // 3. downgrade-only direction needs nothing.
        R"(
module m(input com {T} go)          ;
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go && (mode == 1'b0)) mode <= 1'b1;
  end
endmodule
)",
    };
    for (const char* body : idioms) {
        Compiled c;
        auto result = check_source(policy_header() + body, c);
        EXPECT_TRUE(result.ok) << c.errors() << "\n" << body;
    }
}

} // namespace
} // namespace svlc::test
