#include "sim/simulator.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace svlc::test {
namespace {

TEST(Simulator, CounterCountsAndResets) {
    auto c = compile(R"(
module counter(input com {T} rst, output com [7:0] {T} out);
  reg seq [7:0] {T} count = 8'h0;
  assign out = count;
  always @(seq) begin
    if (rst) count <= 8'b0;
    else count <= count + 8'b1;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("rst", 0);
    sim.run(5);
    EXPECT_EQ(sim.get("count").value(), 5u);
    sim.set_input("rst", 1);
    sim.step();
    EXPECT_EQ(sim.get("count").value(), 0u);
}

TEST(Simulator, InitializersApply) {
    auto c = compile(R"(
module m(input com {T} unused);
  reg seq [15:0] {T} r = 16'hBEEF;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    EXPECT_EQ(sim.get("r").value(), 0xBEEFu);
    sim.step();
    EXPECT_EQ(sim.get("r").value(), 0xBEEFu); // holds without a driver
}

TEST(Simulator, CombChainEvaluatesInDependencyOrder) {
    auto c = compile(R"(
module m(input com [7:0] {T} a);
  wire com [7:0] {T} b;
  wire com [7:0] {T} d;
  // declared in reverse dependency order on purpose
  assign d = b + 8'h1;
  assign b = a + 8'h1;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("a", 5);
    sim.settle();
    EXPECT_EQ(sim.get("d").value(), 7u);
}

TEST(Simulator, NonBlockingSwapWorks) {
    auto c = compile(R"(
module m(input com {T} unused);
  reg seq [7:0] {T} x = 8'h1;
  reg seq [7:0] {T} y = 8'h2;
  always @(seq) begin
    x <= y;
    y <= x;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.step();
    EXPECT_EQ(sim.get("x").value(), 2u);
    EXPECT_EQ(sim.get("y").value(), 1u);
    sim.step();
    EXPECT_EQ(sim.get("x").value(), 1u);
    EXPECT_EQ(sim.get("y").value(), 2u);
}

TEST(Simulator, LastNonBlockingWriteWins) {
    auto c = compile(R"(
module m(input com {T} c);
  reg seq [7:0] {T} r;
  always @(seq) begin
    r <= 8'h11;
    if (c) r <= 8'h22;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("c", 1);
    sim.step();
    EXPECT_EQ(sim.get("r").value(), 0x22u);
    sim.set_input("c", 0);
    sim.step();
    EXPECT_EQ(sim.get("r").value(), 0x11u);
}

TEST(Simulator, ArraysReadWrite) {
    auto c = compile(R"(
module m(input com [1:0] {T} waddr, input com [7:0] {T} wdata,
         input com {T} we, input com [1:0] {T} raddr,
         output com [7:0] {T} rdata);
  reg seq [7:0] {T} mem[0:3];
  assign rdata = mem[raddr];
  always @(seq) begin
    if (we) mem[waddr] <= wdata;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("we", 1);
    sim.set_input("waddr", 2);
    sim.set_input("wdata", 0xAB);
    sim.step();
    EXPECT_EQ(sim.get_elem("mem", 2).value(), 0xABu);
    sim.set_input("we", 0);
    sim.set_input("raddr", 2);
    sim.settle();
    EXPECT_EQ(sim.get("rdata").value(), 0xABu);
}

TEST(Simulator, NextOperatorSeesPendingValue) {
    auto c = compile(R"(
module m(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {T} snapshot;
  always @(seq) begin
    if (go) mode <= ~mode;
  end
  always @(seq) begin
    if (next(mode) == 1'b1) snapshot <= 8'hFF;
    else snapshot <= 8'h00;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("go", 1);
    sim.step(); // mode 0 -> 1; snapshot sees next(mode)=1
    EXPECT_EQ(sim.get("mode").value(), 1u);
    EXPECT_EQ(sim.get("snapshot").value(), 0xFFu);
    sim.step(); // mode 1 -> 0
    EXPECT_EQ(sim.get("mode").value(), 0u);
    EXPECT_EQ(sim.get("snapshot").value(), 0x00u);
}

TEST(Simulator, AssumeViolationsRecorded) {
    auto c = compile(R"(
module m(input com [7:0] {T} x);
  reg seq [7:0] {T} r;
  always @(seq) begin
    assume(x < 8'h10);
    r <= x;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("x", 5);
    sim.step();
    EXPECT_TRUE(sim.violations().empty());
    sim.set_input("x", 0x20);
    sim.step();
    ASSERT_EQ(sim.violations().size(), 1u);
    EXPECT_EQ(sim.violations()[0].cycle, 1u);
}

TEST(Simulator, DependentLabelTracking) {
    auto c = compile(policy_header() + R"(
module m(input com {T} go);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
  always @(seq) begin
    if (go && (mode == 1'b1) && (next(mode) == 1'b0)) r <= 8'h0;
  end
  always @(seq) begin
    if (go) mode <= ~mode;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    const auto& lat = c.design->policy.lattice();
    hir::NetId r = c.design->find_net("r");
    EXPECT_EQ(lat.name(sim.current_label(r)), "T"); // mode = 0
    sim.set_input("go", 1);
    sim.step(); // mode -> 1
    EXPECT_EQ(lat.name(sim.current_label(r)), "U");
    sim.set_input("go", 0);
    sim.step();
    EXPECT_EQ(lat.name(sim.current_label(r)), "U");
}

TEST(Simulator, PartSelectWrite) {
    auto c = compile(R"(
module m(input com [3:0] {T} lo);
  reg seq [7:0] {T} r = 8'hA0;
  always @(seq) begin
    r[3:0] <= lo;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("lo", 0x5);
    sim.step();
    EXPECT_EQ(sim.get("r").value(), 0xA5u);
}

TEST(Simulator, HierarchicalDesignSimulates) {
    auto c = compile(R"(
module adder(input com [7:0] {T} a, input com [7:0] {T} b,
             output com [7:0] {T} sum);
  assign sum = a + b;
endmodule
module top(input com [7:0] {T} x, output com [7:0] {T} y);
  wire com [7:0] {T} mid;
  adder u0(.a(x), .b(8'h3), .sum(mid));
  adder u1(.a(mid), .b(8'h4), .sum(y));
endmodule
)", "top");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("x", 10);
    sim.settle();
    EXPECT_EQ(sim.get("y").value(), 17u);
    // Hierarchical names are visible.
    EXPECT_EQ(sim.get("u0.sum").value(), 13u);
}

TEST(Simulator, ElemAccessOnNonArrayNetThrows) {
    auto c = compile(R"(
module m(input com [7:0] {T} a);
  reg seq [7:0] {T} r;
  always @(seq) begin
    r <= a;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    hir::NetId r = c.design->find_net("r");
    EXPECT_THROW(sim.poke_elem(r, 0, BitVec(8, 1)), std::invalid_argument);
    EXPECT_THROW((void)sim.get_elem(r, 0), std::invalid_argument);
    // Array nets still work through the same entry points.
}

TEST(Simulator, RangeWriteOnFullWidthRegisterMergesCorrectly) {
    // 64-bit register with part-selects touching both extremes: bit 63
    // (the msb+1 == width edge that used to shift a uint64_t by 64) and
    // bit 0 (the lsb == 0 edge).
    auto c = compile(R"(
module m(input com [15:0] {T} hi, input com [15:0] {T} lo);
  reg seq [63:0] {T} a = 64'h1;
  reg seq [63:0] {T} b = 64'h0;
  always @(seq) begin
    a[63:48] <= hi;
  end
  always @(seq) begin
    b[15:0] <= lo;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("hi", 0xBEEF);
    sim.set_input("lo", 0xCAFE);
    sim.step();
    EXPECT_EQ(sim.get("a").value(), (uint64_t{0xBEEF} << 48) | 1u);
    EXPECT_EQ(sim.get("b").value(), 0xCAFEu);
}

TEST(Simulator, RangeWriteInteriorPreservesNeighbors) {
    auto c = compile(R"(
module m(input com [7:0] {T} b);
  reg seq [23:0] {T} r = 24'hA0C0E0;
  always @(seq) begin
    r[15:8] <= b;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    sim.set_input("b", 0x5A);
    sim.step();
    EXPECT_EQ(sim.get("r").value(), 0xA05AE0u);
}

} // namespace
} // namespace svlc::test
