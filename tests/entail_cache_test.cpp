// EntailCache shard-eviction coverage: filling a shard past
// capacity/kShards must evict oldest-inserted entries first, and an
// eviction-heavy (undersized) cache must never change a verdict relative
// to an uncached run — eviction only costs re-derivation, not soundness.
#include "solver/entail_cache.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

namespace svlc::test {
namespace {

using solver::EntailCache;

// Mirrors EntailCache's sharding (16 shards over std::hash) so the test
// can construct deterministic same-shard collisions within this binary.
constexpr size_t kShards = 16;

std::vector<std::string> same_shard_keys(size_t want) {
    std::vector<std::string> out;
    size_t target = std::hash<std::string>{}("shard-probe-0") % kShards;
    for (int i = 0; out.size() < want && i < 100000; ++i) {
        std::string key = "shard-probe-" + std::to_string(i);
        if (std::hash<std::string>{}(key) % kShards == target)
            out.push_back(std::move(key));
    }
    return out;
}

TEST(EntailCacheEviction, OldestInsertedEvictedFirstWithinShard) {
    // capacity 32 → per-shard capacity 2.
    EntailCache cache(32);
    auto keys = same_shard_keys(5);
    ASSERT_EQ(keys.size(), 5u);

    for (size_t i = 0; i < keys.size(); ++i)
        cache.insert(keys[i], {uint64_t(i) + 1});

    auto stats = cache.stats();
    EXPECT_EQ(stats.inserts, 5u);
    EXPECT_EQ(stats.evictions, 3u); // k0, k1, k2 out — oldest first
    EXPECT_EQ(stats.entries, 2u);

    EXPECT_FALSE(cache.lookup(keys[0]).has_value());
    EXPECT_FALSE(cache.lookup(keys[1]).has_value());
    EXPECT_FALSE(cache.lookup(keys[2]).has_value());
    auto k3 = cache.lookup(keys[3]);
    auto k4 = cache.lookup(keys[4]);
    ASSERT_TRUE(k3.has_value());
    ASSERT_TRUE(k4.has_value());
    EXPECT_EQ(k3->candidates, 4u);
    EXPECT_EQ(k4->candidates, 5u);
}

TEST(EntailCacheEviction, ReinsertAfterEvictionIsFreshEntry) {
    EntailCache cache(32); // per-shard capacity 2
    auto keys = same_shard_keys(3);
    ASSERT_EQ(keys.size(), 3u);

    cache.insert(keys[0], {1});
    cache.insert(keys[1], {2});
    cache.insert(keys[2], {3}); // evicts keys[0]
    EXPECT_FALSE(cache.lookup(keys[0]).has_value());

    cache.insert(keys[0], {4}); // back in, now the newest; evicts keys[1]
    EXPECT_FALSE(cache.lookup(keys[1]).has_value());
    ASSERT_TRUE(cache.lookup(keys[0]).has_value());
    EXPECT_EQ(cache.lookup(keys[0])->candidates, 4u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

// The twin design decides the same canonicalized obligations repeatedly;
// a 16-entry cache (per-shard capacity 1) thrashes, which must only cost
// time, never flip a verdict.
const char* kTwinInstances = R"(
lattice { level T; level U; flow T -> U; }
function owner(x:1) { 0 -> T; default -> U; }
module core(input com {T} handoff, input com [7:0] {U} u_step,
            output com [7:0] {U} value);
  reg seq {T} who;
  reg seq [7:0] {owner(who)} count;
  assign value = count;
  always @(seq) begin
    if (handoff) who <= ~who;
  end
  always @(seq) begin
    if (handoff && (who == 1'b1) && (next(who) == 1'b0)) count <= 8'h00;
    else if (who == 1'b1) count <= count + u_step;
    else count <= count + 8'h01;
  end
endmodule
module twin(input com {T} h, input com [7:0] {U} s0,
            input com [7:0] {U} s1, output com [7:0] {U} v0,
            output com [7:0] {U} v1);
  core a(.handoff(h), .u_step(s0), .value(v0));
  core b(.handoff(h), .u_step(s1), .value(v1));
endmodule
)";

TEST(EntailCacheEviction, EvictionHeavyCacheKeepsVerdictsIdentical) {
    Compiled c = compile(kTwinInstances);
    ASSERT_TRUE(c.ok()) << c.errors();

    DiagnosticEngine d_off;
    auto uncached = check::check_design(*c.design, d_off, {});

    EntailCache tiny(16); // per-shard capacity 1: maximal thrash
    check::CheckOptions opts;
    opts.solver.cache = &tiny;
    DiagnosticEngine d_on;
    auto cached = check::check_design(*c.design, d_on, opts);
    // Flood every shard well past capacity so the design's own entries
    // are evicted, then re-check against the thrashed cache.
    for (int i = 0; i < 64; ++i)
        tiny.insert("flood-" + std::to_string(i), {uint64_t(i)});
    DiagnosticEngine d_again;
    auto again = check::check_design(*c.design, d_again, opts);

    ASSERT_EQ(uncached.obligations.size(), cached.obligations.size());
    ASSERT_EQ(uncached.obligations.size(), again.obligations.size());
    for (size_t i = 0; i < uncached.obligations.size(); ++i) {
        EXPECT_EQ(uncached.obligations[i].result.status,
                  cached.obligations[i].result.status)
            << "obligation " << i;
        EXPECT_EQ(uncached.obligations[i].result.status,
                  again.obligations[i].result.status)
            << "obligation " << i;
    }
    EXPECT_EQ(uncached.ok, cached.ok);
    EXPECT_EQ(uncached.failed, again.failed);
    // The cache really was past capacity: entries never exceed it and
    // something got pushed out.
    EXPECT_LE(tiny.stats().entries, 16u);
    EXPECT_GT(tiny.stats().evictions, 0u);
}

} // namespace
} // namespace svlc::test
