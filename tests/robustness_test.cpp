// Robustness: the front end must reject garbage gracefully (diagnostics,
// never crashes), the diagnostics engine must render usable messages, and
// the taint tracker must handle arrays precisely.
#include "test_util.hpp"
#include "verify/taint.hpp"
#include "xform/clearing.hpp"

#include <gtest/gtest.h>

#include <random>

namespace svlc::test {
namespace {

// ---------------------------------------------------------------------------
// Front-end fuzzing: random byte soup and random token soup never crash.
// ---------------------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 40; ++trial) {
        size_t len = rng() % 400;
        std::string soup;
        for (size_t i = 0; i < len; ++i)
            soup.push_back(static_cast<char>(rng() % 96 + 32));
        SourceManager sm;
        DiagnosticEngine diags(&sm);
        (void)Parser::parse_text(soup, sm, diags);
        // No assertion on the outcome beyond "we got here".
    }
}

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
    static const char* tokens[] = {
        "module", "endmodule", "wire", "reg", "com", "seq", "always",
        "begin", "end", "if", "else", "assign", "input", "output", "next",
        "endorse", "lattice", "function", "case", "endcase", "default",
        "(", ")", "[", "]", "{", "}", ";", ":", ",", ".", "=", "<=", "==",
        "&&", "||", "+", "-", "x", "y", "16'h8000", "1'b0", "42", "@", "*",
        "->", "T", "U", "join", "assume", "localparam", "parameter",
    };
    std::mt19937_64 rng(GetParam() ^ 0xF00D);
    for (int trial = 0; trial < 40; ++trial) {
        std::string soup;
        size_t len = rng() % 120;
        for (size_t i = 0; i < len; ++i) {
            soup += tokens[rng() % (sizeof(tokens) / sizeof(tokens[0]))];
            soup += ' ';
        }
        SourceManager sm;
        DiagnosticEngine diags(&sm);
        auto unit = Parser::parse_text(soup, sm, diags);
        // Elaboration must also survive whatever parsed.
        sem::ElaborateOptions opts;
        auto design = sem::elaborate(unit, diags, opts);
        if (design)
            sem::analyze_wellformed(*design, diags);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Diagnostics & source manager
// ---------------------------------------------------------------------------

TEST(Diagnostics, RenderIncludesLocationSnippetAndCaret) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    (void)Parser::parse_text("module m(input com {T} a);\n  wire com {T} ;\n"
                             "endmodule\n",
                             sm, diags, "snippet.svlc");
    ASSERT_TRUE(diags.has_errors());
    std::string rendered = diags.render();
    EXPECT_NE(rendered.find("snippet.svlc:2:"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("wire com {T} ;"), std::string::npos);
    EXPECT_NE(rendered.find("^"), std::string::npos);
}

TEST(Diagnostics, CodesAreCountable) {
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    diags.error(DiagCode::IllegalFlow, {}, "one");
    diags.error(DiagCode::IllegalFlow, {}, "two");
    diags.warning(DiagCode::Unsupported, {}, "warn");
    EXPECT_EQ(diags.count_code(DiagCode::IllegalFlow), 2u);
    EXPECT_EQ(diags.count_code(DiagCode::Unsupported), 1u);
    EXPECT_EQ(diags.error_count(), 2u);
    diags.clear();
    EXPECT_FALSE(diags.has_errors());
}

TEST(SourceManager, LineLookupAndDescribe) {
    SourceManager sm;
    uint32_t id = sm.add_buffer("f.svlc", "first\nsecond\r\nthird");
    EXPECT_EQ(sm.line_text({id, 1, 1}), "first");
    EXPECT_EQ(sm.line_text({id, 2, 1}), "second"); // CR stripped
    EXPECT_EQ(sm.line_text({id, 3, 1}), "third");
    EXPECT_EQ(sm.describe({id, 2, 4}), "f.svlc:2:4");
    EXPECT_EQ(sm.describe({}), "<unknown>");
}

// ---------------------------------------------------------------------------
// Taint tracker: array element precision
// ---------------------------------------------------------------------------

TEST(Taint, ArrayElementsTrackIndependently) {
    auto c = compile(R"(
module m(input com [7:0] {T} td, input com [7:0] {U} ud,
         input com {T} which, input com [1:0] {T} raddr,
         output com [7:0] {U} out);
  reg seq [7:0] {U} mem[0:3];
  assign out = mem[raddr];
  always @(seq) begin
    if (which) mem[0] <= td;
    else mem[1] <= ud;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    LevelId t = *c.design->policy.lattice().find("T");
    LevelId u = *c.design->policy.lattice().find("U");
    hir::NetId mem = c.design->find_net("mem");
    sim.set_input("which", 1);
    sim.set_input("td", 1);
    sim.set_input("ud", 2);
    tracker.step(sim);
    sim.set_input("which", 0);
    tracker.step(sim);
    EXPECT_EQ(tracker.array_taint(mem, 0), t);
    EXPECT_EQ(tracker.array_taint(mem, 1), u);
    EXPECT_TRUE(tracker.violations().empty());
}

TEST(Taint, ViolationRecordsLevels) {
    // A com net labeled T fed from an untrusted input: the static checker
    // rejects this, and the monitor independently flags it at run time.
    auto c = compile(R"(
module m(input com [7:0] {U} uin);
  wire com [7:0] {T} bad;
  reg seq [7:0] {T} sink;
  assign bad = uin;
  always @(seq) begin
    sink <= bad;
  end
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    DiagnosticEngine diags;
    auto verdict = check::check_design(*c.design, diags);
    EXPECT_FALSE(verdict.ok);

    sim::Simulator sim(*c.design);
    verify::TaintTracker tracker(*c.design);
    sim.set_input("uin", 0xAA);
    tracker.step(sim);
    ASSERT_FALSE(tracker.violations().empty());
    const auto& v = tracker.violations().front();
    EXPECT_EQ(c.design->policy.lattice().name(v.taint), "U");
    EXPECT_EQ(c.design->policy.lattice().name(v.declared), "T");
}

// ---------------------------------------------------------------------------
// Clearing transform options
// ---------------------------------------------------------------------------

TEST(Clearing, ArgumentComparisonModeIsMoreConservative) {
    // A label function that maps both 2 and 3 to U: changing the argument
    // from 2 to 3 does not change the level. Level comparison skips the
    // clear; argument comparison clears anyway.
    const char* src = R"(
lattice { level T; level U; flow T -> U; }
function f(x:2) { 0 -> T; default -> U; }
module m(input com [1:0] {T} nxt, input com {U} we,
         input com [7:0] {U} d);
  reg seq [1:0] {T} sel;
  reg seq [7:0] {f(sel)} r;
  always @(seq) begin
    sel <= nxt;
  end
  always @(seq) begin
    if (we) r <= d;
  end
endmodule
)";
    auto run_with = [&](bool compare_levels) {
        auto c = compile(src);
        EXPECT_TRUE(c.ok()) << c.errors();
        xform::ClearingOptions opts;
        opts.compare_levels = compare_levels;
        DiagnosticEngine diags;
        xform::apply_dynamic_clearing(*c.design, diags, opts);
        sem::analyze_wellformed(*c.design, diags);
        sim::Simulator sim(*c.design);
        sim.set_input("nxt", 2);
        sim.set_input("we", 0);
        sim.set_input("d", 0x7E);
        sim.step(); // sel settles to 2 (a clear may fire; r is 0 anyway)
        sim.set_input("we", 1);
        sim.step(); // stable label (2 -> 2): the write lands
        EXPECT_EQ(sim.get("r").value(), 0x7Eu);
        sim.set_input("we", 0);
        sim.set_input("nxt", 3); // argument changes; the *level* does not
        sim.run(2);
        return sim.get("r").value();
    };
    EXPECT_NE(run_with(true), 0u)
        << "level comparison must keep the value when the level is stable";
    EXPECT_EQ(run_with(false), 0u)
        << "argument comparison clears on any argument change";
}

} // namespace
} // namespace svlc::test
