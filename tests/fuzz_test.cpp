// Tests for the grammar-aware fuzzing subsystem: generator determinism
// and well-formedness rate, oracle verdicts over seed ranges, campaign
// driver determinism and report format, and the greedy reducer.
#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/reducer.hpp"
#include "fuzz/rng.hpp"
#include "fuzz/runner.hpp"
#include "pipeline/compilation.hpp"
#include "support/diagnostics.hpp"
#include "support/fsutil.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

namespace svlc::fuzz {
namespace {

namespace fs = std::filesystem;

std::string capture_run(const FuzzOptions& opts, FuzzStats& stats) {
    fs::path log = fs::temp_directory_path() / "svlc-fuzz-test.log";
    std::FILE* out = std::fopen(log.string().c_str(), "w");
    EXPECT_NE(out, nullptr);
    stats = run_fuzz(opts, out);
    std::fclose(out);
    std::string text;
    EXPECT_TRUE(read_file(log.string(), text));
    fs::remove(log);
    return text;
}

TEST(FuzzRng, DeterministicAndDerivedStreamsDiffer) {
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 16; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next()); // astronomically unlikely to collide
    }
    EXPECT_NE(Rng::derive(1, 0), Rng::derive(1, 1));
    EXPECT_NE(Rng::derive(1, 0), Rng::derive(2, 0));
    EXPECT_EQ(Rng::derive(7, 9), Rng::derive(7, 9));
}

TEST(FuzzGenerator, SameSeedSameProgram) {
    GenOptions opts;
    opts.seed = 1234;
    GenProgram a = generate_program(opts);
    GenProgram b = generate_program(opts);
    EXPECT_EQ(a.source, b.source);
    opts.seed = 1235;
    EXPECT_NE(a.source, generate_program(opts).source);
}

TEST(FuzzGenerator, GeneratedProgramsElaborateCleanly) {
    // Every well-formed-class program must survive parse + elaborate +
    // well-formedness: the generator maintains single drivers, acyclic
    // comb deps, in-range slices, and latch-free always@(*) blocks by
    // construction. (Checker acceptance is allowed to vary.)
    int accepted = 0;
    for (uint64_t seed = 0; seed < 60; ++seed) {
        GenOptions opts;
        opts.seed = seed;
        GenProgram p = generate_program(opts);
        pipeline::Compilation comp;
        comp.load_text(p.source, "gen.svlc");
        ASSERT_NE(comp.elaborate(), nullptr)
            << "seed " << seed << ":\n"
            << comp.render_diagnostics() << p.source;
        if (comp.secure())
            ++accepted;
    }
    // The accept bias should keep a healthy share of programs inside the
    // type system — the soundness oracle is vacuous otherwise.
    EXPECT_GE(accepted, 10);
}

TEST(FuzzGenerator, MutantsAndPathologicalAreDeterministic) {
    GenOptions opts;
    opts.seed = 99;
    std::string base = generate_program(opts).source;
    EXPECT_EQ(mutate_source(base, 7), mutate_source(base, 7));
    EXPECT_EQ(pathological_source(3), pathological_source(3));
    EXPECT_NE(pathological_source(3), pathological_source(4));
}

TEST(FuzzOracles, ParseOracleSet) {
    OracleSet set;
    ASSERT_TRUE(parse_oracle_set("all", set));
    EXPECT_TRUE(set.no_crash && set.backend_diff && set.soundness &&
                set.round_trip && set.xform);
    ASSERT_TRUE(parse_oracle_set("no-crash,roundtrip", set));
    EXPECT_TRUE(set.no_crash);
    EXPECT_TRUE(set.round_trip);
    EXPECT_FALSE(set.backend_diff);
    EXPECT_FALSE(set.soundness);
    EXPECT_FALSE(set.xform);
    EXPECT_FALSE(parse_oracle_set("bogus", set));
    EXPECT_FALSE(parse_oracle_set("", set));
}

TEST(FuzzOracles, CleanSweepOverSeedRange) {
    // A miniature campaign inline: every oracle on generated programs.
    OracleConfig cfg;
    for (uint64_t seed = 0; seed < 25; ++seed) {
        GenOptions opts;
        opts.seed = seed;
        GenProgram p = generate_program(opts);
        cfg.seed = seed ^ 0x5eed;
        auto findings = run_oracles(OracleSet::all(), p.source, cfg);
        for (const Finding& f : findings)
            ADD_FAILURE() << "seed " << seed << " oracle "
                          << oracle_name(f.oracle) << ": " << f.detail
                          << "\n"
                          << p.source;
    }
}

TEST(FuzzOracles, RoundTripCatchesPrinterDrift) {
    // A program whose reprint differs structurally would be caught; the
    // shipped printer must be a fixpoint on generated programs.
    GenOptions opts;
    opts.seed = 5;
    GenProgram p = generate_program(opts);
    OracleConfig cfg;
    EXPECT_FALSE(run_oracle(Oracle::RoundTrip, p.source, cfg).has_value());
}

TEST(FuzzOracles, NoCrashSurvivesIllFormedInput) {
    OracleConfig cfg;
    for (uint64_t seed = 0; seed < 30; ++seed) {
        std::string path = pathological_source(seed);
        auto f = run_oracle(Oracle::NoCrash, path, cfg);
        EXPECT_FALSE(f.has_value())
            << "pathological seed " << seed << ": " << f->detail;
    }
}

TEST(FuzzOracles, StrayBeginInIfConditionTerminates) {
    // Regression: a keyword-splice mutation that orphans a block's `end`
    // used to spin parse_block forever on the trailing `endmodule`
    // (found by `svlc fuzz --seed 4`, index 275).
    const char* src = "lattice { level L; }\n"
                      "module top(output com {L} o);\n"
                      "  reg seq {L} m;\n"
                      "  assign o = 1'h0;\n"
                      "  always @(seq) begin\n"
                      "    if (next(m) == 1'h0) m <= 1'h0;\n"
                      "    else if (next(m) begin== 1'h1) m <= m;\n"
                      "  end\n"
                      "endmodule\n";
    OracleConfig cfg;
    auto f = run_oracle(Oracle::NoCrash, src, cfg);
    EXPECT_FALSE(f.has_value()) << f->detail;
}

TEST(FuzzReducer, ShrinksToPredicateCore) {
    std::string text;
    for (int i = 0; i < 40; ++i)
        text += "filler line " + std::to_string(i) + "\n";
    text += "the needle sits here\n";
    for (int i = 40; i < 80; ++i)
        text += "filler line " + std::to_string(i) + "\n";

    auto has_needle = [](const std::string& s) {
        return s.find("needle") != std::string::npos;
    };
    ReduceResult r = reduce_text(text, has_needle);
    EXPECT_TRUE(has_needle(r.text));
    EXPECT_LE(r.text.size(), 32u); // one line, tokens trimmed
    EXPECT_FALSE(r.hit_budget);
}

TEST(FuzzReducer, InputNotFailingIsReturnedUnchanged) {
    auto never = [](const std::string&) { return false; };
    ReduceResult r = reduce_text("abc\ndef\n", never);
    EXPECT_EQ(r.text, "abc\ndef\n");
}

TEST(FuzzReducer, InjectedIllegalFlowShrinksBelow15Lines) {
    // The acceptance-criteria scenario: a generated, checker-accepted
    // program with one injected leak must reduce to a handful of lines
    // under the diagnostic-preserving predicate.
    GenOptions gopts;
    gopts.seed = 9402913734628406890ull; // accepted program (seed 1 idx 5)
    std::string src = generate_program(gopts).source;
    std::string inject = "  wire com [7:0] {L0} leak__;\n"
                         "  assign leak__ = r0[7:0];\nendmodule";
    size_t pos = src.rfind("endmodule");
    ASSERT_NE(pos, std::string::npos);
    src.replace(pos, 9, inject);

    DiagCode code;
    ASSERT_TRUE(diag_code_from_name("illegal-flow", code));
    auto leaks = [code](const std::string& cand) {
        pipeline::Compilation comp;
        comp.load_text(cand, "reduce.svlc");
        comp.check();
        return comp.diags().has_code(code);
    };
    ASSERT_TRUE(leaks(src)) << src;

    ReduceResult r = reduce_text(src, leaks);
    EXPECT_TRUE(leaks(r.text));
    size_t lines = std::count(r.text.begin(), r.text.end(), '\n');
    EXPECT_LE(lines, 15u) << r.text;
}

TEST(FuzzRunner, CampaignIsDeterministicAndWritesReports) {
    fs::path corpus = fs::temp_directory_path() / "svlc-fuzz-test-corpus";
    fs::remove_all(corpus);

    FuzzOptions opts;
    opts.seed = 1;
    opts.count = 60;
    opts.corpus_dir = corpus.string();
    opts.progress_every = 0;

    FuzzStats s1, s2;
    std::string out1 = capture_run(opts, s1);
    std::string out2 = capture_run(opts, s2);
    EXPECT_EQ(out1, out2);
    EXPECT_EQ(s1.programs, 60u);
    EXPECT_EQ(s1.well_formed, s2.well_formed);
    EXPECT_EQ(s1.accepted, s2.accepted);
    EXPECT_EQ(s1.violations.size(), s2.violations.size());
    EXPECT_TRUE(s1.violations.empty())
        << s1.violations.front().finding.detail;
    EXPECT_GT(s1.well_formed, 0u);
    fs::remove_all(corpus);
}

TEST(FuzzRunner, ViolationProducesReducedCorpusEntry) {
    // Force a violation by failing programs through a pseudo-oracle:
    // none exists, so instead check the report JSON shape directly.
    FuzzOptions opts;
    opts.seed = 9;
    FuzzReportEntry entry;
    entry.index = 3;
    entry.program_seed = 77;
    entry.klass = "well-formed";
    entry.finding = {Oracle::BackendDiff, "verdict mismatch"};
    entry.reduced = "module top(); endmodule";
    std::string json = fuzz_report_json(opts, entry, "original text\n");
    EXPECT_NE(json.find("\"schema\": \"svlc-fuzz-report/v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"oracle\": \"diff\""), std::string::npos);
    EXPECT_NE(json.find("\"program_seed\": 77"), std::string::npos);
    EXPECT_NE(json.find("verdict mismatch"), std::string::npos);
}

TEST(FuzzRunner, DumpModeEmitsProgramsWithoutRunningOracles) {
    FuzzOptions opts;
    opts.seed = 2;
    opts.count = 3;
    opts.corpus_dir.clear();
    opts.dump_only = true;
    opts.progress_every = 0;
    FuzzStats stats;
    std::string out = capture_run(opts, stats);
    EXPECT_EQ(stats.programs, 3u);
    EXPECT_EQ(stats.accepted, 0u); // acceptance check skipped in dump mode
    EXPECT_NE(out.find("=== index 0 "), std::string::npos);
    EXPECT_NE(out.find("=== index 2 "), std::string::npos);
}


TEST(FuzzOracles, HuntTracesAlwaysReplayToTrackerViolations) {
    // The no-crash oracle now runs a bounded hunt; its contract is that
    // TaintSim candidates always replay-confirm. Exercise it directly on
    // a design with a reachable leak and on a clean one.
    const char* leaky = R"(
lattice { level T; level U; flow T -> U; }
function mode_to_lb(x:1) { 0 -> T; default -> U; }
module fig3(input com {T} in_v, input com [7:0] {U} in_u);
  reg seq {T} v;
  reg seq [7:0] {U} untrusted;
  reg seq [7:0] {mode_to_lb(v)} shared;
  always @(seq) begin
    v <= in_v;
    untrusted <= in_u;
    if (v == 1'b1) shared <= untrusted;
  end
endmodule
)";
    OracleConfig cfg;
    OracleSet set;
    set.no_crash = true;
    auto findings = run_oracles(set, leaky, cfg);
    EXPECT_TRUE(findings.empty())
        << "a *confirmed* leak is a property of the design, not a "
           "finding; got: "
        << findings[0].detail;

    const char* clean = R"(
lattice { level T; level U; flow T -> U; }
module m(input com [7:0] {U} b, output com [7:0] {U} out);
  reg seq [7:0] {U} r;
  assign out = r;
  always @(seq) begin
    r <= b + 8'h1;
  end
endmodule
)";
    findings = run_oracles(set, clean, cfg);
    EXPECT_TRUE(findings.empty());
}

} // namespace
} // namespace svlc::fuzz
