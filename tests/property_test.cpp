// Algebraic property sweeps: lattice laws on randomized finite lattices,
// BitVec semantics against a 64-bit reference model across widths, and
// solver-label algebra.
#include "lattice/lattice.hpp"
#include "solver/label.hpp"
#include "support/bitvec.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>

namespace svlc::test {
namespace {

// ---------------------------------------------------------------------------
// Lattice laws on random DAG-generated lattices
// ---------------------------------------------------------------------------

/// Builds a random lattice by layering levels between a bottom and a top
/// (guaranteeing joins/meets exist) with random cross edges.
Lattice random_lattice(std::mt19937_64& rng) {
    Lattice l;
    LevelId bot = l.add_level("BOT");
    int mids = 1 + static_cast<int>(rng() % 4);
    std::vector<LevelId> middle;
    for (int i = 0; i < mids; ++i)
        middle.push_back(l.add_level("M" + std::to_string(i)));
    LevelId top = l.add_level("TOP");
    for (LevelId m : middle) {
        l.add_flow(bot, m);
        l.add_flow(m, top);
    }
    // Random order edges between middle levels (respecting index order to
    // stay acyclic).
    for (size_t i = 0; i < middle.size(); ++i)
        for (size_t j = i + 1; j < middle.size(); ++j)
            if (rng() % 3 == 0)
                l.add_flow(middle[i], middle[j]);
    return l;
}

class LatticeLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticeLaws, JoinMeetAlgebra) {
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 30; ++trial) {
        Lattice l = random_lattice(rng);
        std::string err;
        if (!l.finalize(&err))
            continue; // random order wasn't a lattice; fine
        size_t n = l.size();
        for (LevelId a = 0; a < n; ++a) {
            for (LevelId b = 0; b < n; ++b) {
                // Commutativity.
                EXPECT_EQ(l.join(a, b), l.join(b, a));
                EXPECT_EQ(l.meet(a, b), l.meet(b, a));
                // Join/meet are bounds.
                EXPECT_TRUE(l.flows(a, l.join(a, b)));
                EXPECT_TRUE(l.flows(b, l.join(a, b)));
                EXPECT_TRUE(l.flows(l.meet(a, b), a));
                EXPECT_TRUE(l.flows(l.meet(a, b), b));
                // Absorption.
                EXPECT_EQ(l.join(a, l.meet(a, b)), a);
                EXPECT_EQ(l.meet(a, l.join(a, b)), a);
                // Consistency: a ⊑ b iff join(a,b) == b.
                EXPECT_EQ(l.flows(a, b), l.join(a, b) == b);
                // Idempotence.
                EXPECT_EQ(l.join(a, a), a);
                for (LevelId c = 0; c < n; ++c) {
                    // Associativity.
                    EXPECT_EQ(l.join(l.join(a, b), c),
                              l.join(a, l.join(b, c)));
                    EXPECT_EQ(l.meet(l.meet(a, b), c),
                              l.meet(a, l.meet(b, c)));
                    // Monotonicity of join.
                    if (l.flows(a, b))
                        EXPECT_TRUE(l.flows(l.join(a, c), l.join(b, c)));
                }
            }
            EXPECT_TRUE(l.flows(l.bottom(), a));
            EXPECT_TRUE(l.flows(a, l.top()));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLaws,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// BitVec vs. a reference model, across widths
// ---------------------------------------------------------------------------

class BitVecWidths : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitVecWidths, OpsMatchReferenceModulo2W) {
    uint32_t w = GetParam();
    uint64_t mask = BitVec::mask(w);
    std::mt19937_64 rng(w * 7 + 1);
    for (int trial = 0; trial < 200; ++trial) {
        uint64_t x = rng() & mask, y = rng() & mask;
        BitVec a(w, x), b(w, y);
        EXPECT_EQ((a + b).value(), (x + y) & mask);
        EXPECT_EQ((a - b).value(), (x - y) & mask);
        EXPECT_EQ((a * b).value(), (x * y) & mask);
        EXPECT_EQ((a & b).value(), x & y);
        EXPECT_EQ((a | b).value(), x | y);
        EXPECT_EQ((a ^ b).value(), x ^ y);
        EXPECT_EQ(a.bit_not().value(), ~x & mask);
        EXPECT_EQ(a.lt(b).value(), x < y ? 1u : 0u);
        EXPECT_EQ(a.eq(b).value(), x == y ? 1u : 0u);
        if (y != 0) {
            EXPECT_EQ((a / b).value(), x / y);
            EXPECT_EQ((a % b).value(), x % y);
        }
        uint64_t sh = y % (w + 4); // sometimes >= w
        BitVec shv(w, sh);
        // Our shift amount is the operand's masked value.
        uint64_t shm = sh & mask;
        EXPECT_EQ((a << shv).value(),
                  shm >= w ? 0u : (x << shm) & mask);
        EXPECT_EQ((a >> shv).value(), shm >= w ? 0u : x >> shm);
        // Reductions.
        EXPECT_EQ(a.red_or().value(), x != 0 ? 1u : 0u);
        EXPECT_EQ(a.red_and().value(), x == mask ? 1u : 0u);
        EXPECT_EQ(a.red_xor().value(),
                  static_cast<uint64_t>(__builtin_popcountll(x) & 1));
        // Slice/concat round trip.
        if (w >= 2) {
            uint32_t cut = 1 + static_cast<uint32_t>(rng() % (w - 1));
            BitVec hi = a.slice(w - 1, cut);
            BitVec lo = a.slice(cut - 1, 0);
            EXPECT_EQ(hi.concat(lo).value(), x);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidths,
                         ::testing::Values(1, 2, 5, 8, 13, 16, 31, 32, 47,
                                           63, 64));

// ---------------------------------------------------------------------------
// Solver-label algebra
// ---------------------------------------------------------------------------

TEST(SolverLabelAlgebra, JoinDeduplicatesAtoms) {
    auto c = compile(policy_header() + R"(
module m(input com {T} a);
  reg seq {T} mode;
  reg seq [7:0] {mode_to_lb(mode)} r;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    const auto& design = *c.design;
    auto lab = solver::SolverLabel::from_hir(
        design.net(design.find_net("r")).label, design, false);
    ASSERT_EQ(lab.atoms.size(), 1u);
    solver::SolverLabel joined = lab;
    joined.join_with(lab);
    EXPECT_EQ(joined.atoms.size(), 1u); // identical atom not duplicated
    auto primed = solver::SolverLabel::from_hir(
        design.net(design.find_net("r")).label, design, true);
    joined.join_with(primed);
    EXPECT_EQ(joined.atoms.size(), 2u); // primed atom is distinct
    EXPECT_FALSE(joined.is_static());
    // Pretty form mentions the primed argument.
    EXPECT_NE(joined.str(design).find("mode'"), std::string::npos);
}

TEST(SolverLabelAlgebra, PrimedSubstitutionSkipsComArguments) {
    auto c = compile(policy_header() + R"(
module m(input com {T} w);
  wire com {T} cw;
  assign cw = w;
  reg seq [7:0] {mode_to_lb(cw)} r;
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    const auto& design = *c.design;
    auto primed = solver::SolverLabel::from_hir(
        design.net(design.find_net("r")).label, design, true);
    // The com argument keeps its current-cycle meaning: Γ(r){r⃗'/r⃗}
    // substitutes sequential variables only.
    ASSERT_EQ(primed.atoms.size(), 1u);
    ASSERT_EQ(primed.atoms[0].args.size(), 1u);
    EXPECT_FALSE(primed.atoms[0].args[0].primed);
}

} // namespace
} // namespace svlc::test
