// support/net: Content-Length framing (incremental extraction, malformed
// headers, oversized payloads) and Unix-socket lifecycle — in particular
// the stale-socket startup rules: a dead daemon's socket is reclaimed, a
// live daemon's socket is refused, and a non-socket path is never
// touched.
#include "support/net.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <filesystem>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace svlc::test {
namespace {

namespace fs = std::filesystem;
using net::FrameBuffer;
using net::UnixListener;
using net::UnixStream;

std::string tmp_path(const char* name) {
    return (fs::temp_directory_path() /
            (std::string("svlc_net_test_") + name + "_" +
             std::to_string(::getpid()) + ".sock"))
        .string();
}

TEST(Framing, RoundTripSingleFrame) {
    std::string frame = net::make_frame("{\"x\":1}");
    EXPECT_EQ(frame, "Content-Length: 7\r\n\r\n{\"x\":1}");

    FrameBuffer fb;
    fb.append(frame);
    std::string payload, error;
    ASSERT_EQ(fb.next(payload, error), FrameBuffer::Status::Frame);
    EXPECT_EQ(payload, "{\"x\":1}");
    EXPECT_EQ(fb.next(payload, error), FrameBuffer::Status::Need);
}

TEST(Framing, ByteAtATime) {
    std::string frame = net::make_frame("hello world");
    FrameBuffer fb;
    std::string payload, error;
    for (size_t i = 0; i + 1 < frame.size(); ++i) {
        fb.append(std::string_view(&frame[i], 1));
        ASSERT_EQ(fb.next(payload, error), FrameBuffer::Status::Need)
            << "at byte " << i;
    }
    fb.append(std::string_view(&frame.back(), 1));
    ASSERT_EQ(fb.next(payload, error), FrameBuffer::Status::Frame);
    EXPECT_EQ(payload, "hello world");
}

TEST(Framing, TwoFramesOneAppend) {
    FrameBuffer fb;
    fb.append(net::make_frame("first") + net::make_frame("second"));
    std::string payload, error;
    ASSERT_EQ(fb.next(payload, error), FrameBuffer::Status::Frame);
    EXPECT_EQ(payload, "first");
    ASSERT_EQ(fb.next(payload, error), FrameBuffer::Status::Frame);
    EXPECT_EQ(payload, "second");
    EXPECT_EQ(fb.next(payload, error), FrameBuffer::Status::Need);
}

TEST(Framing, UnknownHeadersIgnored) {
    FrameBuffer fb;
    fb.append("Content-Type: application/json\r\n"
              "Content-Length: 2\r\n"
              "X-Custom: y\r\n\r\nok");
    std::string payload, error;
    ASSERT_EQ(fb.next(payload, error), FrameBuffer::Status::Frame);
    EXPECT_EQ(payload, "ok");
}

TEST(Framing, MalformedHeaders) {
    std::string payload, error;
    {
        FrameBuffer fb;
        fb.append("X-Only: 1\r\n\r\nbody");
        EXPECT_EQ(fb.next(payload, error), FrameBuffer::Status::Error);
        EXPECT_NE(error.find("Content-Length"), std::string::npos);
    }
    {
        FrameBuffer fb;
        fb.append("Content-Length: 12abc\r\n\r\n");
        EXPECT_EQ(fb.next(payload, error), FrameBuffer::Status::Error);
    }
    {
        // Oversized declared payload is rejected before buffering it.
        FrameBuffer fb;
        fb.append("Content-Length: 99999999999999999999\r\n\r\n");
        EXPECT_EQ(fb.next(payload, error), FrameBuffer::Status::Error);
    }
    {
        // A header section that never terminates errors at 16 KiB.
        FrameBuffer fb;
        fb.append(std::string(17 * 1024, 'a'));
        EXPECT_EQ(fb.next(payload, error), FrameBuffer::Status::Error);
    }
}

TEST(Sockets, ConnectRefusedWhenNothingListens) {
    std::string path = tmp_path("nobody");
    std::string error;
    EXPECT_FALSE(UnixStream::connect(path, error).has_value());
    EXPECT_FALSE(net::socket_alive(path));
}

TEST(Sockets, BindAcceptEcho) {
    std::string path = tmp_path("echo");
    std::string error;
    auto listener = UnixListener::bind(path, error);
    ASSERT_TRUE(listener.has_value()) << error;
    EXPECT_TRUE(net::socket_alive(path));

    // socket_alive's connect-probe above left a (closed) pending
    // connection in the backlog; drain it before the real client.
    auto probe = listener->accept(error);
    ASSERT_TRUE(probe.has_value()) << error;

    auto client = UnixStream::connect(path, error);
    ASSERT_TRUE(client.has_value()) << error;
    auto served = listener->accept(error);
    ASSERT_TRUE(served.has_value()) << error;

    ASSERT_TRUE(net::write_frame(*client, "ping", error)) << error;
    net::FrameBuffer fb;
    std::string payload;
    ASSERT_TRUE(net::read_frame(*served, fb, payload, error)) << error;
    EXPECT_EQ(payload, "ping");

    listener->close_and_unlink();
    EXPECT_FALSE(fs::exists(path));
}

TEST(Sockets, LiveSocketRefused) {
    std::string path = tmp_path("live");
    std::string error;
    auto first = UnixListener::bind(path, error);
    ASSERT_TRUE(first.has_value()) << error;

    std::string second_error;
    EXPECT_FALSE(UnixListener::bind(path, second_error).has_value());
    EXPECT_NE(second_error.find("already listening"), std::string::npos)
        << second_error;
    // The loser must not have unlinked the winner's socket.
    EXPECT_TRUE(net::socket_alive(path));
}

TEST(Sockets, StaleSocketReclaimed) {
    std::string path = tmp_path("stale");
    // Simulate a daemon that died without cleanup: bind a raw socket,
    // close the fd, leave the filesystem entry behind.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
    ::unlink(path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ::close(fd);
    ASSERT_TRUE(fs::exists(path));
    EXPECT_FALSE(net::socket_alive(path));

    // A new listener reclaims the dead path and serves on it.
    std::string error;
    auto listener = UnixListener::bind(path, error);
    ASSERT_TRUE(listener.has_value()) << error;
    EXPECT_TRUE(net::socket_alive(path));
}

TEST(Sockets, SendToHalfClosedPeerFailsWithoutSigpipe) {
    // Regression: writing to a peer that already closed its end must
    // surface as a false return from send_all, not kill the process
    // with SIGPIPE. No handler is installed here on purpose — if the
    // MSG_NOSIGNAL/SO_NOSIGPIPE plumbing regresses, this whole test
    // binary dies, which is exactly the failure being pinned.
    std::string path = tmp_path("sigpipe");
    std::string error;
    auto listener = UnixListener::bind(path, error);
    ASSERT_TRUE(listener.has_value()) << error;
    auto probe = listener->accept(error); // drain socket_alive's probe
    auto client = UnixStream::connect(path, error);
    ASSERT_TRUE(client.has_value()) << error;
    auto served = listener->accept(error);
    ASSERT_TRUE(served.has_value()) << error;

    served->close(); // half-close: client's fd is now a dead letter

    // The first send may land in the (already doomed) buffer; keep
    // writing until the kernel reports the broken pipe.
    std::string blob(256 * 1024, 'x');
    bool failed = false;
    for (int i = 0; i < 64 && !failed; ++i)
        failed = !client->send_all(blob, error);
    EXPECT_TRUE(failed);
    EXPECT_FALSE(error.empty());
}

TEST(Sockets, ConnectWithRetryWaitsForLateServer) {
    std::string path = tmp_path("late");
    ::unlink(path.c_str());

    // Server binds ~200 ms after the client starts dialing — the
    // coordinator-races-its-workers startup order.
    std::thread server([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        std::string error;
        auto listener = UnixListener::bind(path, error);
        ASSERT_TRUE(listener.has_value()) << error;
        std::string accept_error;
        // Serve long enough for the client's winning attempt.
        for (int i = 0; i < 100; ++i) {
            if (auto conn = listener->accept(accept_error)) {
                std::string payload;
                net::FrameBuffer fb;
                std::string err;
                if (net::read_frame(*conn, fb, payload, err)) {
                    EXPECT_EQ(payload, "hello");
                }
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        FAIL() << "client never connected";
    });

    net::RetryOptions retry;
    retry.attempts = 40;
    retry.backoff_ms = 25;
    std::string error;
    auto stream = net::connect_with_retry(path, retry, error);
    ASSERT_TRUE(stream.has_value()) << error;
    EXPECT_TRUE(net::write_frame(*stream, "hello", error)) << error;
    server.join();
}

TEST(Sockets, ConnectWithRetryZeroAttemptsFailsFast) {
    std::string path = tmp_path("noretry");
    ::unlink(path.c_str());
    net::RetryOptions retry; // attempts = 0: single try
    std::string error;
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(net::connect_with_retry(path, retry, error).has_value());
    auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(1));
    EXPECT_FALSE(error.empty());
}

TEST(Sockets, NonSocketPathNeverTouched) {
    std::string path = tmp_path("regular");
    ::unlink(path.c_str());
    {
        std::ofstream f(path);
        f << "precious data\n";
    }
    std::string error;
    EXPECT_FALSE(UnixListener::bind(path, error).has_value());
    EXPECT_NE(error.find("not a socket"), std::string::npos) << error;
    // The file survives, contents intact.
    std::ifstream f(path);
    std::string line;
    std::getline(f, line);
    EXPECT_EQ(line, "precious data");
    ::unlink(path.c_str());
}

} // namespace
} // namespace svlc::test
