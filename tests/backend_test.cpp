// Pluggable entailment-backend tests: the enum/prune/cdcl differential
// contract over the whole corpus, budget-ablation soundness (tightening a
// solver budget can only surrender precision, never flip a verdict),
// stable obligation ids, resolvable obligation locations, and
// counterexample-witness round-trips through JSON and the artifact store.
#include "driver/driver.hpp"
#include "incr/store.hpp"
#include "pipeline/compilation.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace svlc::test {
namespace {

namespace fs = std::filesystem;
using solver::BackendKind;
using solver::EntailStatus;

/// Every design the backend contract is exercised against: the on-disk
/// hdl/ corpus plus the four built-in processor variants.
std::vector<driver::JobSpec> corpus_jobs() {
    std::vector<driver::JobSpec> jobs;
    std::string error;
    EXPECT_TRUE(driver::jobs_from_directory(SVLC_HDL_DIR, jobs, error))
        << error;
    EXPECT_FALSE(jobs.empty());
    auto cpus = driver::builtin_cpu_jobs();
    jobs.insert(jobs.end(), std::make_move_iterator(cpus.begin()),
                std::make_move_iterator(cpus.end()));
    return jobs;
}

// --- differential contract -------------------------------------------------

TEST(BackendDifferential, CorpusAndBuiltinsAgree) {
    auto diffs = driver::diff_backends(corpus_jobs());
    for (const auto& d : diffs)
        ADD_FAILURE() << d.job << " diverged on " << d.field
                      << ": enum=" << d.enum_value << " " << d.backend << "="
                      << d.other_value;
}

TEST(BackendDifferential, IdenticalWitnessOnFig3) {
    // The Fig. 3 implicit downgrade must refute with the *same* first
    // counterexample under every backend — candidate order is part of the
    // backend contract, not just the verdict.
    std::string fig3 =
        std::string(SVLC_HDL_DIR) + "/fig3_implicit_downgrade.svlc";
    std::map<BackendKind, std::vector<std::string>> details;
    for (BackendKind kind :
         {BackendKind::Enum, BackendKind::Prune, BackendKind::Cdcl}) {
        pipeline::CompilationOptions opts;
        opts.check.solver.backend = kind;
        pipeline::Compilation comp(std::move(opts));
        ASSERT_TRUE(comp.load_file(fig3));
        const check::CheckResult* res = comp.check();
        ASSERT_NE(res, nullptr) << comp.render_diagnostics();
        EXPECT_FALSE(res->ok);
        for (const auto& ob : res->obligations)
            if (ob.result.status == EntailStatus::Refuted) {
                ASSERT_TRUE(ob.result.witness.has_value());
                EXPECT_FALSE(ob.result.witness->bindings.empty());
                details[kind].push_back(ob.id + "|" + ob.result.detail);
            }
    }
    EXPECT_FALSE(details[BackendKind::Enum].empty());
    EXPECT_EQ(details[BackendKind::Enum], details[BackendKind::Prune]);
    EXPECT_EQ(details[BackendKind::Enum], details[BackendKind::Cdcl]);
}

// --- budget-ablation soundness ---------------------------------------------

std::map<std::string, EntailStatus> statuses(const std::string& path,
                                             check::CheckOptions copts) {
    pipeline::CompilationOptions opts;
    opts.check = copts;
    pipeline::Compilation comp(std::move(opts));
    EXPECT_TRUE(comp.load_file(path));
    const check::CheckResult* res = comp.check();
    EXPECT_NE(res, nullptr);
    std::map<std::string, EntailStatus> out;
    if (res)
        for (const auto& ob : res->obligations) {
            EXPECT_FALSE(ob.id.empty());
            out[ob.id] = ob.result.status;
        }
    return out;
}

TEST(BudgetAblation, TighteningNeverFlipsAVerdict) {
    // Tightening any solver budget may surrender Proven to Unknown but
    // must never manufacture a proof the full budget cannot find, and
    // must never flip Proven <-> Refuted. Checked per obligation id, for
    // both backends, on every corpus design.
    std::vector<std::string> files;
    for (const auto& e : fs::directory_iterator(SVLC_HDL_DIR))
        if (e.path().extension() == ".svlc")
            files.push_back(e.path().string());
    ASSERT_FALSE(files.empty());

    for (BackendKind kind :
         {BackendKind::Enum, BackendKind::Prune, BackendKind::Cdcl}) {
        check::CheckOptions base;
        base.solver.backend = kind;

        std::vector<check::CheckOptions> tightened;
        for (int depth : {0, 1, 2}) {
            check::CheckOptions t = base;
            t.solver.closure_depth = depth;
            tightened.push_back(t);
        }
        for (uint64_t cand : {uint64_t{1}, uint64_t{8}, uint64_t{64}}) {
            check::CheckOptions t = base;
            t.solver.max_candidates = cand;
            tightened.push_back(t);
        }
        for (uint32_t width : {0u, 1u, 2u}) {
            check::CheckOptions t = base;
            t.solver.max_enum_width = width;
            tightened.push_back(t);
        }

        for (const std::string& file : files) {
            auto baseline = statuses(file, base);
            for (const auto& topts : tightened) {
                auto tight = statuses(file, topts);
                ASSERT_EQ(baseline.size(), tight.size()) << file;
                for (const auto& [id, tstatus] : tight) {
                    ASSERT_TRUE(baseline.count(id)) << file << " " << id;
                    EntailStatus bstatus = baseline[id];
                    if (tstatus == EntailStatus::Proven)
                        EXPECT_EQ(bstatus, EntailStatus::Proven)
                            << file << " " << id
                            << ": tightened budget proved what the full "
                               "budget could not";
                    if (tstatus == EntailStatus::Refuted &&
                        bstatus == EntailStatus::Proven)
                        ADD_FAILURE()
                            << file << " " << id
                            << ": Proven flipped to Refuted under a "
                               "tightened budget";
                }
            }
        }
    }
}

// --- stable obligation ids -------------------------------------------------

TEST(ObligationIds, DeterministicAcrossRunsAndBackends) {
    for (const auto& job : corpus_jobs()) {
        std::vector<std::vector<std::string>> runs;
        // Prune twice (same-backend determinism) plus enum once
        // (cross-backend agreement); a second enum pass would re-pay the
        // full un-pruned enumeration for no extra coverage.
        for (BackendKind kind : {BackendKind::Prune, BackendKind::Enum,
                                 BackendKind::Prune}) {
            pipeline::CompilationOptions opts;
            opts.top = job.top;
            opts.check.solver.backend = kind;
            pipeline::Compilation comp(std::move(opts));
            if (job.source.empty())
                ASSERT_TRUE(comp.load_file(job.path)) << job.name;
            else
                comp.load_text(job.source, job.name);
            const check::CheckResult* res = comp.check();
            ASSERT_NE(res, nullptr) << job.name;
            std::vector<std::string> ids;
            for (const auto& ob : res->obligations)
                ids.push_back(ob.id);
            runs.push_back(std::move(ids));
        }
        EXPECT_EQ(runs[0], runs[1]) << job.name;
        EXPECT_EQ(runs[0], runs[2]) << job.name;
    }
}

TEST(ObligationIds, EncodeModuleNetKindAndSite) {
    pipeline::Compilation comp;
    comp.load_text(R"(
lattice { level T; level U; flow T -> U; }
module m(input com {T} a, input com {T} b);
  reg seq {T} r;
  always @(seq) begin
    if (a) r <= 1'b0;
    else if (b) r <= 1'b1;
  end
endmodule
)",
                   "ids.svlc");
    const check::CheckResult* res = comp.check();
    ASSERT_NE(res, nullptr) << comp.render_diagnostics();
    std::vector<std::string> seq_ids;
    for (const auto& ob : res->obligations)
        if (ob.kind == check::ObligationKind::SeqAssign)
            seq_ids.push_back(ob.id);
    // Two write sites to the same (net, kind) get consecutive site
    // ordinals in walk order.
    ASSERT_EQ(seq_ids.size(), 2u);
    EXPECT_EQ(seq_ids[0], "m:r:seq:0");
    EXPECT_EQ(seq_ids[1], "m:r:seq:1");
}

// --- obligation locations --------------------------------------------------

TEST(ObligationLocs, EveryCorpusObligationResolvesToASource) {
    for (const auto& job : corpus_jobs()) {
        pipeline::CompilationOptions opts;
        opts.top = job.top;
        // Locations are backend-independent; take the fast one.
        opts.check.solver.backend = BackendKind::Prune;
        pipeline::Compilation comp(std::move(opts));
        if (job.source.empty())
            ASSERT_TRUE(comp.load_file(job.path)) << job.name;
        else
            comp.load_text(job.source, job.name);
        const check::CheckResult* res = comp.check();
        ASSERT_NE(res, nullptr) << job.name;
        for (const auto& ob : res->obligations) {
            EXPECT_TRUE(ob.loc.valid())
                << job.name << " " << ob.id << ": synthesized obligation "
                << "lost its source location";
            auto rec =
                pipeline::make_obligation_record(ob, *comp.design(),
                                                 &comp.sources());
            EXPECT_NE(rec.loc.find(':'), std::string::npos)
                << job.name << " " << ob.id << ": loc '" << rec.loc
                << "' does not resolve to file:line:col";
        }
    }
}

// --- witness round-trips ---------------------------------------------------

TEST(WitnessRecords, SurviveTheArtifactStore) {
    fs::path dir =
        fs::temp_directory_path() / "svlc_backend_test_store";
    fs::remove_all(dir);

    driver::JobSpec job;
    job.name = "fig3";
    job.path =
        std::string(SVLC_HDL_DIR) + "/fig3_implicit_downgrade.svlc";

    driver::DriverOptions opts;
    opts.jobs = 1;
    opts.store_dir = dir.string();

    driver::VerificationDriver cold(opts);
    auto cold_report = cold.run({job});
    driver::VerificationDriver warm(opts);
    auto warm_report = warm.run({job});

    ASSERT_EQ(warm_report.results.size(), 1u);
    EXPECT_TRUE(warm_report.results[0].skipped);
    ASSERT_FALSE(cold_report.results[0].flagged.empty());
    const auto& crec = cold_report.results[0].flagged[0];
    ASSERT_FALSE(warm_report.results[0].flagged.empty());
    const auto& wrec = warm_report.results[0].flagged[0];
    EXPECT_EQ(crec.id, wrec.id);
    EXPECT_EQ(crec.status, wrec.status);
    EXPECT_EQ(crec.detail, wrec.detail);
    EXPECT_EQ(crec.loc, wrec.loc);
    ASSERT_EQ(crec.witness.size(), wrec.witness.size());
    for (size_t i = 0; i < crec.witness.size(); ++i) {
        EXPECT_EQ(crec.witness[i].net, wrec.witness[i].net);
        EXPECT_EQ(crec.witness[i].primed, wrec.witness[i].primed);
        EXPECT_EQ(crec.witness[i].value, wrec.witness[i].value);
    }
    // The stable report subset must not distinguish a replayed verdict
    // from a fresh one — including the witness records.
    EXPECT_EQ(cold_report.to_json(false), warm_report.to_json(false));

    fs::remove_all(dir);
}

TEST(WitnessRecords, BatchJsonCarriesWitnessesAndIds) {
    driver::JobSpec job;
    job.name = "fig3";
    job.path =
        std::string(SVLC_HDL_DIR) + "/fig3_implicit_downgrade.svlc";
    driver::VerificationDriver drv(driver::DriverOptions{});
    auto report = drv.run({job});
    std::string json = report.to_json(false);
    EXPECT_NE(json.find("\"flagged\""), std::string::npos);
    EXPECT_NE(json.find("\"witness\""), std::string::npos);
    EXPECT_NE(json.find("fig3:shared:seq:0"), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"refuted\""), std::string::npos);
}

} // namespace
} // namespace svlc::test
