// Synthesis model: sanity and monotonicity properties, plus the
// enable-FF mapping option that drives part of the paper's §3.3 overhead.
#include "synth/synthesize.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace svlc::test {
namespace {

const char* kCounter8 = R"(
module counter(input com {T} rst, output com [7:0] {T} out);
  reg seq [7:0] {T} count;
  assign out = count;
  always @(seq) begin
    if (rst) count <= 8'b0;
    else count <= count + 8'b1;
  end
endmodule
)";

TEST(Synth, CounterMapsToAdderAndFFs) {
    auto c = compile(kCounter8);
    ASSERT_TRUE(c.ok()) << c.errors();
    auto report = synth::synthesize(*c.design);
    EXPECT_GT(report.area_um2, 0.0);
    EXPECT_EQ(report.ff_bits, 8u);
    EXPECT_GE(report.cells.by_name.at("FA"), 8u);
    EXPECT_GT(report.critical_path_ns, 0.0);
    EXPECT_TRUE(report.meets_target) << report.summary();
}

TEST(Synth, EnableFFReducesArea) {
    const char* src = R"(
module m(input com {T} en, input com [31:0] {T} d);
  reg seq [31:0] {T} r;
  always @(seq) begin
    if (en) r <= d;
  end
endmodule
)";
    auto c = compile(src);
    ASSERT_TRUE(c.ok()) << c.errors();
    synth::SynthOptions with_en, without_en;
    with_en.use_enable_ff = true;
    without_en.use_enable_ff = false;
    auto a = synth::synthesize(*c.design, with_en);
    auto b = synth::synthesize(*c.design, without_en);
    EXPECT_EQ(a.enable_ff_bits, 32u);
    EXPECT_EQ(b.enable_ff_bits, 0u);
    EXPECT_LT(a.area_um2, b.area_um2)
        << "DFFE mapping must be cheaper than DFF + mux";
}

TEST(Synth, WiderDatapathCostsMore) {
    auto narrow = compile(R"(
module m(input com [7:0] {T} a, input com [7:0] {T} b,
         output com [7:0] {T} y);
  assign y = a + b;
endmodule
)");
    auto wide = compile(R"(
module m(input com [31:0] {T} a, input com [31:0] {T} b,
         output com [31:0] {T} y);
  assign y = a + b;
endmodule
)");
    ASSERT_TRUE(narrow.ok() && wide.ok());
    auto rn = synth::synthesize(*narrow.design);
    auto rw = synth::synthesize(*wide.design);
    EXPECT_GT(rw.area_um2, rn.area_um2);
    EXPECT_GE(rw.critical_path_ns, rn.critical_path_ns);
}

TEST(Synth, RegisterFileDominatedByFFsAndMuxes) {
    const char* src = R"(
module rf(input com [4:0] {T} waddr, input com [31:0] {T} wdata,
          input com {T} we, input com [4:0] {T} raddr,
          output com [31:0] {T} rdata);
  reg seq [31:0] {T} mem[0:31];
  assign rdata = mem[raddr];
  always @(seq) begin
    if (we) mem[waddr] <= wdata;
  end
endmodule
)";
    auto c = compile(src);
    ASSERT_TRUE(c.ok()) << c.errors();
    auto report = synth::synthesize(*c.design);
    EXPECT_EQ(report.ff_bits, 32u * 32u);
    // Read port: 31 muxes per bit.
    EXPECT_GE(report.cells.by_name.at("MUX2"), 31u * 32u);
    EXPECT_GT(report.area_um2, 4000.0);
}

TEST(Synth, DeeperLogicLengthensCriticalPath) {
    auto shallow = compile(R"(
module m(input com [31:0] {T} a, output com [31:0] {T} y);
  assign y = a + 32'h1;
endmodule
)");
    auto deep = compile(R"(
module m(input com [31:0] {T} a, output com [31:0] {T} y);
  wire com [31:0] {T} t1;
  wire com [31:0] {T} t2;
  wire com [31:0] {T} t3;
  assign t1 = a + 32'h1;
  assign t2 = t1 + 32'h2;
  assign t3 = t2 + 32'h3;
  assign y = t3 + 32'h4;
endmodule
)");
    ASSERT_TRUE(shallow.ok() && deep.ok());
    auto rs = synth::synthesize(*shallow.design);
    auto rd = synth::synthesize(*deep.design);
    EXPECT_GT(rd.critical_path_ns, rs.critical_path_ns);
}

TEST(Synth, ConstantsAndWiringAreFree) {
    auto c = compile(R"(
module m(input com [15:0] {T} a, output com [7:0] {T} y);
  assign y = a[11:4];
endmodule
)");
    ASSERT_TRUE(c.ok()) << c.errors();
    auto report = synth::synthesize(*c.design);
    EXPECT_EQ(report.area_um2, 0.0);
}

TEST(Synth, SummaryMentionsTargetStatus) {
    auto c = compile(kCounter8);
    ASSERT_TRUE(c.ok());
    auto report = synth::synthesize(*c.design);
    EXPECT_NE(report.summary().find("area"), std::string::npos);
    EXPECT_NE(report.summary().find("met"), std::string::npos);
}

} // namespace
} // namespace svlc::test
